package bench

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/vclock"
)

// CoordinatorConfig drives a multi-process sharded sweep: the
// coordinator spawns one subprocess per shard, each running its
// content-addressed slice of the grid against its own journal, and
// babysits them — crashed shards restart and resume from their partial
// journal, wedged shards are reclaimed by a process-level deadline, and
// a shard that exhausts its restart budget degrades the sweep instead
// of aborting it.
type CoordinatorConfig struct {
	// Shards is the number of grid slices (and subprocesses). Must be
	// positive.
	Shards int
	// MaxRestarts bounds how many times one shard is relaunched after
	// its first attempt (crashes and deadline kills both count). Zero
	// means a shard gets exactly one attempt.
	MaxRestarts int
	// Deadline is the process-level straggler policy: a shard whose
	// journal stops growing across Probes consecutive Interval-long
	// real-time windows is presumed wedged beyond what its in-process
	// watchdog can reclaim (hung runtime, stopped process) and is
	// SIGKILLed, then restarted under the normal restart budget. The
	// zero value disables deadline kills. Journal growth is the
	// process-level analog of the cell watchdog's virtual-clock probes:
	// the probe cadence is operator real time, but the verdict depends
	// only on whether durable progress happened.
	Deadline WatchdogPolicy
	// Dir is where the shard journals live (created if missing). Each
	// shard i of N journals to Dir/shard-i-of-N.jsonl.
	Dir string
	// Command builds the subprocess for one shard: typically the
	// running binary re-invoked with -shard i/N and -journal path. The
	// coordinator starts, kills, and restarts what this returns; each
	// call must return a fresh unstarted Cmd. Restarted shards resume
	// from their journal, so the command must be idempotent under
	// re-execution.
	Command func(shard ShardSpec, journalPath string) *exec.Cmd
}

// ShardStatus is the coordinator's account of one shard.
type ShardStatus struct {
	// Shard is the slice this status describes.
	Shard ShardSpec
	// Journal is the shard's journal path.
	Journal string
	// Launches counts subprocess launches, including restarts.
	Launches int
	// DeadlineKills counts launches the straggler deadline reclaimed.
	DeadlineKills int
	// Completed reports whether the shard eventually exited cleanly.
	Completed bool
	// Err describes the final failure of a shard that exhausted its
	// restart budget; empty for completed shards.
	Err string
}

// CoordinatorResult summarizes a coordinated sweep.
type CoordinatorResult struct {
	// Shards holds one status per shard, indexed by shard number.
	Shards []ShardStatus
	// JournalPaths lists every shard journal in shard order, the input
	// set for MergeJournals.
	JournalPaths []string
}

// Failed returns the shard specs that never completed. An empty result
// means the whole grid is covered by the journals.
func (r *CoordinatorResult) Failed() []ShardSpec {
	var failed []ShardSpec
	for _, s := range r.Shards {
		if !s.Completed {
			failed = append(failed, s.Shard)
		}
	}
	return failed
}

// ShardJournalPath names shard i-of-n's journal inside dir.
func ShardJournalPath(dir string, shard ShardSpec) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.jsonl", shard.Index, shard.Count))
}

// RunCoordinator executes a sharded sweep across subprocesses. It
// returns once every shard has either completed or exhausted its
// restart budget; per-shard failure is reported in the result, not as
// an error — a dead shard costs its cells (reported as shard failures
// downstream), never the sweep. The error return covers coordinator-
// level failures only (unusable configuration or journal directory).
func RunCoordinator(cfg CoordinatorConfig) (*CoordinatorResult, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("bench: coordinator needs a positive shard count, got %d", cfg.Shards)
	}
	if cfg.Command == nil {
		return nil, fmt.Errorf("bench: coordinator needs a shard command builder")
	}
	if cfg.MaxRestarts < 0 {
		return nil, fmt.Errorf("bench: coordinator restart budget %d must not be negative", cfg.MaxRestarts)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("bench: creating shard journal directory: %w", err)
	}

	res := &CoordinatorResult{Shards: make([]ShardStatus, cfg.Shards)}
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		shard := ShardSpec{Index: i, Count: cfg.Shards}
		res.Shards[i] = ShardStatus{Shard: shard, Journal: ShardJournalPath(cfg.Dir, shard)}
		res.JournalPaths = append(res.JournalPaths, res.Shards[i].Journal)
		wg.Add(1)
		go func(st *ShardStatus) {
			defer wg.Done()
			runShardProcess(cfg, st)
		}(&res.Shards[i])
	}
	wg.Wait()
	return res, nil
}

// runShardProcess babysits one shard: launch, watch, restart. Each
// launch resumes from the shard's journal, so the cells lost to a kill
// are only those in flight at the instant of death — the same contract
// the single-process journal has, lifted to process granularity.
func runShardProcess(cfg CoordinatorConfig, st *ShardStatus) {
	for attempt := 0; attempt <= cfg.MaxRestarts; attempt++ {
		st.Launches++
		killed, err := launchAndWatch(cfg, st)
		if err == nil {
			st.Completed = true
			st.Err = ""
			return
		}
		if killed {
			st.DeadlineKills++
		}
		st.Err = err.Error()
	}
}

// launchAndWatch runs one shard subprocess attempt to completion,
// SIGKILLing it if the straggler deadline fires. killed reports a
// deadline kill (as opposed to the process dying on its own).
func launchAndWatch(cfg CoordinatorConfig, st *ShardStatus) (killed bool, err error) {
	cmd := cfg.Command(st.Shard, st.Journal)
	if cmd == nil {
		return false, fmt.Errorf("bench: shard %s: command builder returned nil", st.Shard)
	}
	if err := cmd.Start(); err != nil {
		return false, fmt.Errorf("bench: shard %s: starting subprocess: %w", st.Shard, err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()

	if !cfg.Deadline.Enabled() {
		if werr := <-done; werr != nil {
			return false, fmt.Errorf("bench: shard %s: subprocess failed: %w", st.Shard, werr)
		}
		return false, nil
	}

	// The process-level deadline probes the shard's journal size: a
	// shard making progress checkpoints cells, and each checkpoint grows
	// the journal. The in-process watchdog already reclaims hung *cells*;
	// this deadline reclaims hung *processes* — a wedged runtime, a
	// livelocked pool — that the in-process machinery can no longer save.
	//greenlint:allow wallclock coordinator process-deadline probe timer is operator-facing real time; kill/restart/resume is byte-identity-safe, so the verdict never reaches a measured quantity
	ticker := time.NewTicker(cfg.Deadline.Interval)
	defer ticker.Stop()
	stall := vclock.NewStallCounter(cfg.Deadline.Probes)
	stall.Observe(journalSize(st.Journal))
	for {
		select {
		case werr := <-done:
			if werr != nil {
				return false, fmt.Errorf("bench: shard %s: subprocess failed: %w", st.Shard, werr)
			}
			return false, nil
		case <-ticker.C:
			if !stall.Observe(journalSize(st.Journal)) {
				continue
			}
			// No durable progress across the deadline window: reclaim the
			// process. SIGKILL, not SIGTERM — a wedged process may not
			// service signals, and the journal makes abrupt death safe.
			cmd.Process.Kill()
			<-done
			return true, fmt.Errorf("bench: shard %s: no journal progress across %d probes — straggler killed", st.Shard, cfg.Deadline.Probes)
		}
	}
}

// journalSize probes a shard journal's size; a missing file (the shard
// has not created it yet) probes as zero.
func journalSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}
