package bench

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"strings"
	"time"

	"repro/internal/automl"
	"repro/internal/energy"
	"repro/internal/ensemble"
	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/repo"
	"repro/internal/tabular"
)

// Repository-backed analyses: once a grid's predictions live in the
// evaluation repository, ensembling and portfolio learning run as pure
// lookup + arithmetic — no fits, no predictions, zero marginal training
// joules (the TabRepo move, PAPERS.md). The simulated compute is still
// charged to a meter: "almost free" is a measurement, not an exemption.

// EnsembleSimCell is one simulated ensemble: all stored systems of a
// (dataset, budget, seed) cell blended by greedy selection.
type EnsembleSimCell struct {
	Dataset string
	Budget  time.Duration
	Seed    uint64
	// Members counts the stored systems that participated.
	Members int
	// Active counts members Caruana selection gave positive weight.
	Active int
	// BestSingle is the best individual member's holdout balanced
	// accuracy; Ensemble is the blended ensemble's. The gap is the
	// zero-extra-joules accuracy the store buys.
	BestSingle float64
	Ensemble   float64
	// KWh is the simulation energy the cell charged (lookup + blend).
	KWh float64
}

// EnsembleSimResult is a store-wide ensemble simulation.
type EnsembleSimResult struct {
	Cells []EnsembleSimCell
	// Hits counts member entries loaded from the repository; Missing
	// counts (system, cell) pairs the store did not hold; Damaged
	// counts entries that failed verification (AllowDamage only —
	// otherwise the simulation aborts instead).
	Hits    int
	Missing int
	Damaged int
	// TotalKWh is the full simulation's charged energy.
	TotalKWh float64
}

// SimulateEnsembles simulates greedy ensemble selection over every grid
// cell's stored predictions: for each (dataset, budget, seed), the
// systems' cached probability slabs are loaded, split into selection
// and holdout halves, Caruana-selected and blended — without a single
// fit or live prediction. Labels come from regenerating the dataset
// split exactly as the scheduler does (identity-keyed RNG streams make
// that bit-identical to the original run). All simulation compute —
// slab lookups, the selection loop, blending and scoring — is charged
// to a single-core meter on cfg.Machine, so the result reports real
// (tiny) kWh instead of pretending the analysis was free. Cells with
// fewer than two stored members are skipped and their absent members
// counted as Missing.
func SimulateEnsembles(systems []automl.System, cfg Config, rp *repo.Repository) (*EnsembleSimResult, error) {
	if rp == nil {
		return nil, fmt.Errorf("bench: ensemble simulation needs a repository")
	}
	cfg = cfg.normalized()
	fingerprint := Fingerprint(systems, cfg)
	inj := faults.New(cfg.Faults)
	meter := energy.NewMeter(cfg.Machine, 1)
	res := &EnsembleSimResult{}

	for di, spec := range cfg.Datasets {
		var ds *tabular.Frame
		var dsErr error
		generated := false
		for seed := 0; seed < cfg.Seeds; seed++ {
			cellSeed := uint64(seed)*1009 + uint64(di)
			var test tabular.View
			var labels []int
			split := false
			for _, budget := range cfg.Budgets {
				var probas [][][]float64
				members := 0
				for _, sys := range systems {
					if budget < sys.MinBudget() {
						continue
					}
					id := cellID(sys.Name(), spec.Name, budget, cellSeed)
					e, damaged, err := rp.Get(fingerprint, id)
					if err != nil {
						return nil, err
					}
					if damaged {
						res.Damaged++
						continue
					}
					if e == nil {
						res.Missing++
						continue
					}
					if !split {
						if !generated {
							ds, dsErr = generateDataset(spec, cfg, inj)
							generated = true
						}
						if dsErr != nil {
							return nil, fmt.Errorf("bench: regenerating %s for simulation: %w", spec.Name, dsErr)
						}
						splitRng := rand.New(rand.NewPCG(cfg.Seed+uint64(seed)*101, uint64(di)))
						_, test = ds.All().TrainTestSplit(splitRng)
						labels = test.LabelsInto(nil)
						split = true
					}
					if e.Rows != test.Rows() || e.Classes != test.Classes() {
						return nil, fmt.Errorf("bench: repository cell %s holds %d×%d predictions, test split is %d×%d — store built from a different grid", id, e.Rows, e.Classes, test.Rows(), test.Classes())
					}
					rows, err := tabular.UnflattenRows(e.Proba, e.Rows, e.Classes)
					if err != nil {
						return nil, fmt.Errorf("bench: repository cell %s: %w", id, err)
					}
					probas = append(probas, rows)
					members++
					res.Hits++
				}
				if members < 2 {
					continue
				}
				before := meter.Tracker().KWh(energy.Execution)
				sim, err := ensemble.SimulateSelection(probas, labels, test.Classes(), 2*members)
				if err != nil {
					return nil, fmt.Errorf("bench: simulating %s/%s/seed %d: %w", spec.Name, FormatBudget(budget), cellSeed, err)
				}
				// Charge the simulation's entire compute — lookup, selection,
				// blend, scoring — to the meter; nothing else runs, so the
				// delta below is pure lookup+blend energy.
				for _, w := range sim.Cost.Works(0) {
					meter.Run(energy.Execution, w)
				}
				kwh := meter.Tracker().KWh(energy.Execution) - before
				res.Cells = append(res.Cells, EnsembleSimCell{
					Dataset:    spec.Name,
					Budget:     budget,
					Seed:       cellSeed,
					Members:    members,
					Active:     sim.ActiveMembers,
					BestSingle: sim.BestSingle,
					Ensemble:   sim.HoldoutScore,
					KWh:        kwh,
				})
			}
		}
	}
	res.TotalKWh = meter.Tracker().KWh(energy.Execution)
	return res, nil
}

// Render formats the simulation as a paper-style table.
func (r *EnsembleSimResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Simulated ensembles from the evaluation repository (no refits)\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "dataset\tbudget\tseed\tmembers\tactive\tbest single\tensemble\tΔ\tsim kWh")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%.4f\t%.4f\t%+.4f\t%.3g\n",
			c.Dataset, FormatBudget(c.Budget), c.Seed, c.Members, c.Active,
			c.BestSingle, c.Ensemble, c.Ensemble-c.BestSingle, c.KWh)
	}
	w.Flush()
	fmt.Fprintf(&sb, "cells: %d simulated; entries: %d hit(s), %d missing, %d damaged; total simulated energy: %.6g kWh\n",
		len(r.Cells), r.Hits, r.Missing, r.Damaged, r.TotalKWh)
	return sb.String()
}

// PortfolioFromRepo meta-learns a zero-shot portfolio from every entry
// in the repository that recorded a winning pipeline configuration
// (across all fingerprints — meta-learning wants breadth, and entries
// of any grid are honest (config, dataset, score) observations). An
// empty or config-less store yields the default portfolio via
// automl.MetaLearnPortfolio's fallback. The walk is sorted, so the
// learned portfolio is deterministic for a given store.
func PortfolioFromRepo(rp *repo.Repository, size int) ([]pipeline.Config, int, error) {
	var evals []automl.PortfolioEvaluation
	damaged, err := rp.Walk(func(e *repo.Entry) error {
		if len(e.Config) == 0 {
			return nil
		}
		var cfg pipeline.Config
		if err := json.Unmarshal(e.Config, &cfg); err != nil {
			return fmt.Errorf("bench: repository entry %s: undecodable config: %w", e.Key, err)
		}
		evals = append(evals, automl.PortfolioEvaluation{
			Dataset: e.Dataset,
			Config:  cfg,
			Score:   e.Score,
		})
		return nil
	})
	if err != nil {
		return nil, damaged, err
	}
	return automl.MetaLearnPortfolio(evals, size), damaged, nil
}
