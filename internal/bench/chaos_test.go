package bench

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/automl"
	"repro/internal/faults"
	"repro/internal/openml"
)

// chaosSystems keeps the chaos grids small enough to rerun dozens of
// times per test: two systems, two datasets, one budget, two seeds.
func chaosSystems() []automl.System { return DefaultSystems()[:2] }

// chaosCfg is the crash-chaos grid: crash/error faults plus injected
// hangs under a fast watchdog, on deliberately tiny datasets. The fault
// seed is pinned so the baseline grid contains at least one stalled
// cell (asserted by the tests that rely on it).
func chaosCfg() Config {
	return Config{
		Datasets: openml.Suite()[:2],
		Budgets:  []time.Duration{10 * time.Second},
		Seeds:    2,
		Scale: openml.ScaleProfile{
			RowExponent: 0.3, MinRows: 60, MaxRows: 90,
			FeatureExponent: 0.3, MinFeatures: 4, MaxFeatures: 8,
			MaxClasses: 4,
		},
		Faults:   faults.Config{Rate: 0.25, HangRate: 0.2, Seed: 11},
		Watchdog: WatchdogPolicy{Probes: 2, Interval: 5 * time.Millisecond},
	}
}

// chaosKill simulates the process dying at one deterministic journal
// crash point: before the fatal append nothing is affected, and every
// append after it fails immediately — a dead process writes nothing
// more. Mode "torn" additionally tears the fatal line in half before
// dying, the on-disk state a real kill mid-write leaves behind.
type chaosKill struct {
	mode  string // crashAppendStart, crashAppendWritten, crashAppendSynced, or "torn"
	at    int    // zero-based append sequence to die at
	dead  bool
	fired bool
}

func (k *chaosKill) hook(point string, seq int, f *os.File, line []byte) error {
	if k.dead {
		return errors.New("chaos: journal belongs to a dead process")
	}
	target, torn := k.mode, false
	if k.mode == "torn" {
		target, torn = crashAppendWritten, true
	}
	if point != target || seq != k.at {
		return nil
	}
	k.dead, k.fired = true, true
	if torn {
		fi, err := f.Stat()
		if err != nil {
			return err
		}
		if err := f.Truncate(fi.Size() - int64(len(line)/2)); err != nil {
			return err
		}
	}
	return errors.New("chaos: killed at " + point)
}

// chaosExports renders the artifacts greenbench would write from the
// records: CSV, JSON, and the fig3 SVG chart.
func chaosExports(t *testing.T, records []Record) (csv, js, svg []byte) {
	t.Helper()
	var csvBuf, jsBuf, svgBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, records); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jsBuf, records); err != nil {
		t.Fatal(err)
	}
	stats := Aggregate(records, rand.New(rand.NewPCG(9, 9)))
	if err := WriteFig3SVG(&svgBuf, stats, false); err != nil {
		t.Fatal(err)
	}
	return csvBuf.Bytes(), jsBuf.Bytes(), svgBuf.Bytes()
}

// TestChaosKillResumeByteIdentical is the crash-chaos contract: a run
// killed at every deterministic journal crash point — before the write,
// mid-write with a torn line, after the write, and after the sync — and
// then resumed must yield records and CSV/JSON/SVG exports
// byte-identical to an uninterrupted run, at worker counts 1 and 4.
func TestChaosKillResumeByteIdentical(t *testing.T) {
	cfg := chaosCfg()
	want := RunGrid(chaosSystems(), withWorkers(cfg, 1))
	stalls := 0
	for _, r := range want {
		if r.Failure == faults.Stall {
			stalls++
			if !r.Fallback || !r.Scored() {
				t.Fatalf("%s/%s: stalled cell must degrade to a scored fallback: %+v", r.System, r.Dataset, r)
			}
		}
	}
	if stalls == 0 {
		t.Fatal("chaos baseline has no stalled cells — retune chaosCfg's hang rate or fault seed")
	}
	wantCSV, wantJSON, wantSVG := chaosExports(t, want)
	appends := len(want) // every cell journals exactly once in an uninterrupted run

	fingerprint := Fingerprint(chaosSystems(), cfg)
	modes := []string{crashAppendStart, "torn", crashAppendWritten, crashAppendSynced}
	for _, workers := range []int{1, 4} {
		for _, mode := range modes {
			// The torn-write mode — the trickiest recovery — is swept at
			// every append; the cleaner kills sample first/middle/last to
			// keep the matrix affordable under -race.
			seqs := []int{0, appends / 2, appends - 1}
			if mode == "torn" {
				seqs = seqs[:0]
				for at := 0; at < appends; at++ {
					seqs = append(seqs, at)
				}
			}
			for _, at := range seqs {
				name := fmt.Sprintf("workers=%d/%s/append=%d", workers, mode, at)
				path := filepath.Join(t.TempDir(), "run.jsonl")

				j, err := OpenJournal(path, fingerprint)
				if err != nil {
					t.Fatal(err)
				}
				kill := &chaosKill{mode: mode, at: at}
				j.crash = kill.hook
				_, _, err = runGrid(chaosSystems(), withWorkers(cfg, workers), j)
				j.Close()
				if err == nil || !kill.fired {
					t.Fatalf("%s: kill did not abort the run (err=%v, fired=%v)", name, err, kill.fired)
				}

				got, err := RunGridResumable(chaosSystems(), withWorkers(cfg, workers), path)
				if err != nil {
					t.Fatalf("%s: resume: %v", name, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: resumed records differ from the uninterrupted run", name)
				}
				csv, js, svg := chaosExports(t, got)
				if !bytes.Equal(csv, wantCSV) || !bytes.Equal(js, wantJSON) || !bytes.Equal(svg, wantSVG) {
					t.Fatalf("%s: resumed exports are not byte-identical", name)
				}
			}
		}
	}
}

// TestWatchdogReclaimsHangCells injects a hang into every Fit attempt:
// the watchdog must reclaim each cell (recorded as a stall, charged the
// budget it burned, scored by the fallback) without wedging the worker
// pool, and identically at worker counts 1 and 4.
func TestWatchdogReclaimsHangCells(t *testing.T) {
	cfg := chaosCfg()
	cfg.Faults = faults.Config{HangRate: 1, Seed: 3}
	want := RunGrid(chaosSystems(), withWorkers(cfg, 1))
	if n := expectedCells(chaosSystems(), cfg); len(want) != n {
		t.Fatalf("got %d records, want %d — stalled cells must not shrink the grid", len(want), n)
	}
	for _, r := range want {
		if r.Failure != faults.Stall {
			t.Fatalf("%s/%s: failure %q, want stall", r.System, r.Dataset, r.Failure)
		}
		if !r.Fallback || !r.Scored() || r.TestScore <= 0 {
			t.Fatalf("%s/%s: stalled cell must yield a scored fallback: %+v", r.System, r.Dataset, r)
		}
		if r.ExecKWh <= 0 || r.ExecTime <= 0 {
			t.Errorf("%s/%s: the budget a hang burned before abandonment must stay charged: %v kWh, %v",
				r.System, r.Dataset, r.ExecKWh, r.ExecTime)
		}
		if r.Attempts != 1 {
			t.Errorf("%s/%s: stalled cell retried (%d attempts); a wedged trainer must degrade, not retry",
				r.System, r.Dataset, r.Attempts)
		}
	}
	got := RunGrid(chaosSystems(), withWorkers(cfg, 4))
	if !reflect.DeepEqual(got, want) {
		t.Error("stall records differ between worker counts — abandonment leaked real time into the records")
	}
}

// TestChaosExportCrashLeavesOldArtifact covers the export-boundary
// crash point: a re-render that dies partway through must leave the
// previous artifact byte-intact under the final name and no temp
// litter behind.
func TestChaosExportCrashLeavesOldArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig3.svg")
	records := []Record{{System: "S", Dataset: "d", Budget: time.Second, TestScore: 0.5}}
	stats := Aggregate(records, rand.New(rand.NewPCG(1, 2)))
	if err := WriteSVGFile(path, func(w io.Writer) error { return WriteFig3SVG(w, stats, false) }); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	boom := errors.New("chaos: render killed mid-export")
	err = WriteSVGFile(path, func(w io.Writer) error {
		if _, werr := w.Write([]byte("<svg>torn")); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("failed render returned %v, want the render error", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed re-render corrupted the previous artifact")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("failed export left temp litter: %d directory entries", len(entries))
	}
}
