package bench

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/openml"
)

func TestParseShardSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    ShardSpec
		wantErr bool
	}{
		{in: "0/1", want: ShardSpec{Index: 0, Count: 1}},
		{in: "0/4", want: ShardSpec{Index: 0, Count: 4}},
		{in: "3/4", want: ShardSpec{Index: 3, Count: 4}},
		{in: "4/4", wantErr: true},   // index == count
		{in: "9/4", wantErr: true},   // index beyond count
		{in: "-1/4", wantErr: true},  // negative index
		{in: "0/0", wantErr: true},   // zero count
		{in: "0/-2", wantErr: true},  // negative count
		{in: "", wantErr: true},      // no separator
		{in: "1", wantErr: true},     // no separator
		{in: "a/4", wantErr: true},   // non-numeric index
		{in: "0/b", wantErr: true},   // non-numeric count
		{in: "1/2/3", wantErr: true}, // trailing junk in count
	}
	for _, tc := range cases {
		got, err := ParseShardSpec(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseShardSpec(%q) = %+v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseShardSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseShardSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestShardSpecString(t *testing.T) {
	if s := (ShardSpec{}).String(); s != "" {
		t.Errorf("zero ShardSpec renders %q, want empty", s)
	}
	spec := ShardSpec{Index: 2, Count: 4}
	if s := spec.String(); s != "2/4" {
		t.Errorf("String() = %q, want 2/4", s)
	}
	back, err := ParseShardSpec(spec.String())
	if err != nil || back != spec {
		t.Errorf("round-trip: ParseShardSpec(%q) = %+v, %v", spec.String(), back, err)
	}
}

// TestShardPartitionCoversGrid checks the partition invariant the merge
// machinery leans on: for any shard count, every cell belongs to
// exactly one shard, so the shards are disjoint and their union is the
// whole grid.
func TestShardPartitionCoversGrid(t *testing.T) {
	cfg := chaosCfg()
	systems := chaosSystems()
	fingerprint := Fingerprint(systems, cfg)
	refs := EnumerateCellRefs(systems, cfg)
	if len(refs) == 0 {
		t.Fatal("no cells enumerated")
	}
	for _, count := range []int{1, 2, 3, 4, 7} {
		for _, ref := range refs {
			owners := 0
			for i := 0; i < count; i++ {
				if (ShardSpec{Index: i, Count: count}).Owns(fingerprint, ref.ID()) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("count=%d: cell %s owned by %d shards, want exactly 1", count, ref.ID(), owners)
			}
		}
	}
	// The zero spec owns everything.
	for _, ref := range refs {
		if !(ShardSpec{}).Owns(fingerprint, ref.ID()) {
			t.Fatalf("unsharded spec must own %s", ref.ID())
		}
	}
}

// TestShardAssignmentIsFingerprintKeyed: the same cell lands on
// different shards under different grid fingerprints — assignment hashes
// the grid identity, not just the cell — while staying stable for a
// fixed fingerprint.
func TestShardAssignmentIsFingerprintKeyed(t *testing.T) {
	cfg := chaosCfg()
	systems := chaosSystems()
	refs := EnumerateCellRefs(systems, cfg)
	fpA := Fingerprint(systems, cfg)
	cfgB := cfg
	cfgB.Seed = 99
	fpB := Fingerprint(systems, cfgB)
	if fpA == fpB {
		t.Fatal("fingerprints must differ for differing grid seeds")
	}
	moved := 0
	for _, ref := range refs {
		a := shardIndexOf(fpA, ref.ID(), 4)
		if a2 := shardIndexOf(fpA, ref.ID(), 4); a2 != a {
			t.Fatalf("assignment not stable for %s", ref.ID())
		}
		if shardIndexOf(fpB, ref.ID(), 4) != a {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no cell changed shard across fingerprints — assignment ignores the fingerprint")
	}
}

// TestEnumerateCellRefsMatchesGridOrder: the identity-only enumeration
// must reproduce the scheduler's canonical order exactly — it is what
// merge uses to lay records back out in unsharded order.
func TestEnumerateCellRefsMatchesGridOrder(t *testing.T) {
	cfg := chaosCfg()
	cfg.Faults.HangRate = 0 // keep the oracle run fast
	systems := chaosSystems()
	records := RunGrid(systems, withWorkers(cfg, 1))
	refs := EnumerateCellRefs(systems, cfg)
	if len(refs) != len(records) {
		t.Fatalf("EnumerateCellRefs yields %d cells, grid ran %d", len(refs), len(records))
	}
	for i, ref := range refs {
		rec := records[i]
		got := CellRef{System: rec.System, Dataset: rec.Dataset, Budget: rec.Budget, Seed: rec.Seed}
		if got != ref {
			t.Fatalf("position %d: enumeration %+v, grid %+v", i, ref, got)
		}
	}
}

// TestRunShardMergeByteIdenticalMatrix is the tentpole contract, run
// in-process: for shard counts 1, 2 and 4 at worker counts 1 and 4, the
// merged shard journals must reproduce the unsharded single-worker
// run's records — and its CSV/JSON/SVG exports — byte for byte.
func TestRunShardMergeByteIdenticalMatrix(t *testing.T) {
	cfg := chaosCfg()
	systems := chaosSystems()
	want := RunGrid(systems, withWorkers(cfg, 1))
	wantCSV, wantJSON, wantSVG := chaosExports(t, want)
	fingerprint := Fingerprint(systems, cfg)
	refs := EnumerateCellRefs(systems, cfg)

	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("shards=%d/workers=%d", shards, workers)
			dir := t.TempDir()
			var paths []string
			coveredCells := 0
			for i := 0; i < shards; i++ {
				scfg := withWorkers(cfg, workers)
				scfg.Shard = ShardSpec{Index: i, Count: shards}
				path := filepath.Join(dir, fmt.Sprintf("s%d.jsonl", i))
				run, err := RunShard(systems, scfg, path)
				if err != nil {
					t.Fatalf("%s: shard %d: %v", name, i, err)
				}
				if run.Damaged != 0 {
					t.Fatalf("%s: shard %d reports %d damaged lines on a clean run", name, i, run.Damaged)
				}
				coveredCells += len(run.Records)
				paths = append(paths, path)
			}
			if coveredCells != len(want) {
				t.Fatalf("%s: shards ran %d cells, grid has %d — partition is not a partition", name, coveredCells, len(want))
			}
			res, err := MergeJournals(paths, fingerprint, refs)
			if err != nil {
				t.Fatalf("%s: merge: %v", name, err)
			}
			if len(res.Missing) != 0 || res.Damaged != 0 {
				t.Fatalf("%s: merge reports %d missing, %d damaged on a clean run", name, len(res.Missing), res.Damaged)
			}
			if !reflect.DeepEqual(res.Records, want) {
				t.Fatalf("%s: merged records differ from the unsharded run", name)
			}
			csv, js, svg := chaosExports(t, res.Records)
			if !bytes.Equal(csv, wantCSV) || !bytes.Equal(js, wantJSON) || !bytes.Equal(svg, wantSVG) {
				t.Fatalf("%s: merged exports are not byte-identical to the unsharded run", name)
			}
		}
	}
}

// TestShardRecordsAreGridSubsequence: a shard's own records are exactly
// the unsharded run's records restricted to the cells it owns, in the
// same relative order.
func TestShardRecordsAreGridSubsequence(t *testing.T) {
	cfg := chaosCfg()
	systems := chaosSystems()
	want := RunGrid(systems, withWorkers(cfg, 1))
	fingerprint := Fingerprint(systems, cfg)
	spec := ShardSpec{Index: 1, Count: 2}

	scfg := cfg
	scfg.Shard = spec
	run, err := RunShard(systems, scfg, filepath.Join(t.TempDir(), "s.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	var expect []Record
	for _, rec := range want {
		if spec.Owns(fingerprint, cellID(rec.System, rec.Dataset, rec.Budget, rec.Seed)) {
			expect = append(expect, rec)
		}
	}
	if len(expect) == 0 {
		t.Fatal("shard 1/2 owns no cells — widen the chaos grid")
	}
	if !reflect.DeepEqual(run.Records, expect) {
		t.Errorf("shard records are not the owned subsequence of the unsharded run")
	}
}

// TestShardJournalBindsAssignment: a shard journal refuses to resume
// under a different shard assignment or grid fingerprint — the cell set
// would silently diverge from the file's contents.
func TestShardJournalBindsAssignment(t *testing.T) {
	cfg := chaosCfg()
	systems := chaosSystems()
	fingerprint := Fingerprint(systems, cfg)
	path := filepath.Join(t.TempDir(), "s.jsonl")

	j, err := openJournal(path, fingerprint, ShardSpec{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	if _, err := openJournal(path, fingerprint, ShardSpec{Index: 1, Count: 2}); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Errorf("resume under a different shard index accepted (err=%v)", err)
	}
	if _, err := openJournal(path, fingerprint, ShardSpec{Index: 0, Count: 4}); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Errorf("resume under a different shard count accepted (err=%v)", err)
	}
	if _, err := openJournal(path, fingerprint, ShardSpec{}); err == nil || !strings.Contains(err.Error(), "shard") {
		t.Errorf("resume of a shard journal as a whole-grid journal accepted (err=%v)", err)
	}
	if _, err := openJournal(path, "feedfacefeedface", ShardSpec{Index: 0, Count: 2}); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("resume under a different fingerprint accepted (err=%v)", err)
	}
	if _, err := openJournal(path, fingerprint, ShardSpec{Index: 0, Count: 2}); err != nil {
		t.Errorf("resume under the original assignment refused: %v", err)
	}
}

// TestWholeGridJournalStaysCompatible: unsharded journals written
// before sharding existed carry no shard field; they must keep opening
// under the zero spec.
func TestWholeGridJournalStaysCompatible(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path, "0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{System: "S", Dataset: "d", Budget: time.Second, TestScore: 0.5}
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := OpenJournal(path, "0123456789abcdef")
	if err != nil {
		t.Fatalf("whole-grid journal refused to reopen: %v", err)
	}
	defer j2.Close()
	if j2.Len() != 1 {
		t.Errorf("replayed %d records, want 1", j2.Len())
	}
}

// TestRunShardValidatesSpec: a malformed shard spec is a configuration
// error before any cell runs.
func TestRunShardValidatesSpec(t *testing.T) {
	cfg := chaosCfg()
	cfg.Shard = ShardSpec{Index: 5, Count: 2}
	if _, err := RunShard(chaosSystems(), cfg, filepath.Join(t.TempDir(), "s.jsonl")); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

// TestShardFingerprintIgnoresShard: the shard assignment is a
// throughput knob like Workers — two shards of the same grid must agree
// on the fingerprint, or merge would refuse its own journals.
func TestShardFingerprintIgnoresShard(t *testing.T) {
	cfg := chaosCfg()
	systems := chaosSystems()
	base := Fingerprint(systems, cfg)
	cfg.Shard = ShardSpec{Index: 1, Count: 4}
	cfg.Workers = 7
	cfg.Watchdog = WatchdogPolicy{Probes: 9, Interval: time.Second}
	if got := Fingerprint(systems, cfg); got != base {
		t.Errorf("fingerprint changed with shard/workers/watchdog: %s vs %s", got, base)
	}
}

// TestEnumerateGridShardsLazily: a shard that owns no cell of a dataset
// must not generate that dataset. Observable via enumeration output:
// the shard's cells reference only datasets it owns cells of.
func TestEnumerateGridShardsLazily(t *testing.T) {
	cfg := chaosCfg()
	cfg.Datasets = openml.Suite()[:4]
	cfg = cfg.normalized()
	systems := chaosSystems()
	fingerprint := Fingerprint(systems, cfg)
	// Find a (shard count, index) whose owned cells skip at least one
	// dataset entirely, so laziness has something to skip.
	refs := EnumerateCellRefs(systems, cfg)
	spec := ShardSpec{}
	for count := 2; count <= 16 && !spec.Enabled(); count++ {
		for idx := 0; idx < count; idx++ {
			owned := map[string]bool{}
			for _, ref := range refs {
				if (ShardSpec{Index: idx, Count: count}).Owns(fingerprint, ref.ID()) {
					owned[ref.Dataset] = true
				}
			}
			if len(owned) > 0 && len(owned) < len(cfg.Datasets) {
				spec = ShardSpec{Index: idx, Count: count}
				break
			}
		}
	}
	if !spec.Enabled() {
		t.Skip("no shard skips a whole dataset at these sizes")
	}
	scfg := cfg
	scfg.Shard = spec
	cells, _, err := enumerateGrid(systems, scfg, faults.New(scfg.Faults), nil, fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if !spec.Owns(fingerprint, cellID(c.sys.Name(), c.spec.Name, c.budget, c.cellSeed)) {
			t.Fatalf("enumerated cell %s/%s not owned by shard %s", c.sys.Name(), c.spec.Name, spec)
		}
	}
}
