package bench

import (
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/automl"
	"repro/internal/faults"
)

// ShardSpec selects one content-addressed slice of the benchmark grid.
// The zero value means "unsharded": the whole grid.
//
// Shard assignment is fingerprint-keyed and cell-addressed: a cell
// belongs to shard fnv64a(fingerprint|cellID) mod Count. The key never
// depends on enumeration position, worker count, or which other cells
// exist, so the assignment is stable across runs and a given journal
// always describes the same set of cells. Every cell of the grid is
// owned by exactly one shard of a given Count, and the union of shards
// 0..Count-1 is the full grid — the invariant the merge machinery
// (MergeJournals) leans on.
type ShardSpec struct {
	// Index identifies this shard, in [0, Count).
	Index int
	// Count is the total number of shards. Zero means unsharded.
	Count int
}

// ParseShardSpec parses the -shard flag syntax "i/N". The index must
// satisfy 0 <= i < N and N must be positive; anything else is a
// configuration error, not a silently empty shard.
func ParseShardSpec(s string) (ShardSpec, error) {
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return ShardSpec{}, fmt.Errorf("bench: malformed shard %q: want index/count, e.g. 0/4", s)
	}
	idx, err := strconv.Atoi(s[:i])
	if err != nil {
		return ShardSpec{}, fmt.Errorf("bench: malformed shard index in %q: %w", s, err)
	}
	count, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return ShardSpec{}, fmt.Errorf("bench: malformed shard count in %q: %w", s, err)
	}
	spec := ShardSpec{Index: idx, Count: count}
	if err := spec.Validate(); err != nil {
		return ShardSpec{}, err
	}
	return spec, nil
}

// Validate rejects impossible shard coordinates.
func (s ShardSpec) Validate() error {
	if s.Count <= 0 {
		return fmt.Errorf("bench: shard count %d must be positive", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("bench: shard index %d out of range [0, %d)", s.Index, s.Count)
	}
	return nil
}

// Enabled reports whether the spec selects a shard (vs. the whole grid).
func (s ShardSpec) Enabled() bool { return s.Count > 0 }

// String renders the spec in the -shard flag syntax; the zero
// (unsharded) value renders empty.
func (s ShardSpec) String() string {
	if !s.Enabled() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// shardIndexOf maps a cell to its owning shard index among count
// shards. The hash covers the grid fingerprint and the cell identity
// and nothing else. FNV-1a's low bits diffuse poorly — modulo a
// power-of-two shard count they collapse to a 4-state automaton over
// the input's low bits, which skews the partition badly — so the sum is
// run through a 64-bit avalanche finalizer before the modulo.
func shardIndexOf(fingerprint, id string, count int) int {
	h := fnv.New64a()
	h.Write([]byte(fingerprint))
	h.Write([]byte{'|'})
	h.Write([]byte(id))
	return int(mix64(h.Sum64()) % uint64(count))
}

// mix64 is the murmur3/splitmix finalizer: a bijective avalanche that
// spreads every input bit into every output bit, so taking the result
// modulo a small count is as fair as the hash itself.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owns reports whether the shard owns the given cell of the
// fingerprinted grid. The unsharded spec owns everything.
func (s ShardSpec) Owns(fingerprint, id string) bool {
	if !s.Enabled() {
		return true
	}
	return shardIndexOf(fingerprint, id, s.Count) == s.Index
}

// CellRef is the identity of one grid cell — the fields cellID encodes.
// EnumerateCellRefs yields them in canonical grid order without paying
// for dataset generation, which is what lets the merge machinery
// reassemble shard journals into the exact record order an unsharded
// run produces.
type CellRef struct {
	System  string
	Dataset string
	Budget  time.Duration
	Seed    uint64
}

// ID returns the cell's journal key.
func (c CellRef) ID() string { return cellID(c.System, c.Dataset, c.Budget, c.Seed) }

// failureRecord synthesizes a failure record for a cell that never
// executed because its owning shard died: the grid does not shrink, the
// failure is visible in the taxonomy, and every field that identifies
// the cell is preserved.
func (c CellRef) failureRecord(kind faults.Kind) Record {
	return Record{
		System:  c.System,
		Dataset: c.Dataset,
		Budget:  c.Budget,
		Seed:    c.Seed,
		Failure: kind,
	}
}

// EnumerateCellRefs walks the grid in the exact order enumerateGrid
// does — dataset outermost, then seed, system, budget, with sub-minimum
// budgets skipped — and returns every cell's identity. It is the
// enumeration half of the scheduler without the execution inputs
// (datasets, splits), cheap enough for merge-time use.
func EnumerateCellRefs(systems []automl.System, cfg Config) []CellRef {
	cfg = cfg.normalized()
	var refs []CellRef
	for di, spec := range cfg.Datasets {
		for seed := 0; seed < cfg.Seeds; seed++ {
			cellSeed := uint64(seed)*1009 + uint64(di)
			for _, sys := range systems {
				for _, budget := range cfg.Budgets {
					if budget < sys.MinBudget() {
						continue
					}
					refs = append(refs, CellRef{
						System:  sys.Name(),
						Dataset: spec.Name,
						Budget:  budget,
						Seed:    cellSeed,
					})
				}
			}
		}
	}
	return refs
}

// ShardRun is the outcome of one sharded (or journaled) grid run.
type ShardRun struct {
	// Records holds the executed (or journal-replayed) cells in
	// canonical grid order — for a sharded run, only the shard's cells.
	Records []Record
	// Damaged counts CRC-skipped journal checkpoint lines encountered
	// while resuming; the affected cells were rerun, but the damage is
	// surfaced rather than silent.
	Damaged int
	// Repo reports the run's evaluation-repository traffic; the zero
	// value means no repository was configured.
	Repo RepoStats
}

// RunShard executes the cfg.Shard slice of the grid with a journal at
// path, resuming from any partial journal there. The journal header is
// bound to both the grid fingerprint and the shard spec, so a shard
// journal can never be resumed against a different grid or a different
// shard assignment. With cfg.Shard zero this is a whole-grid journaled
// run; with path empty it degrades to plain RunGrid.
func RunShard(systems []automl.System, cfg Config, path string) (ShardRun, error) {
	if err := validateShard(cfg); err != nil {
		return ShardRun{}, err
	}
	if path == "" {
		records, stats, err := runGrid(systems, cfg, nil)
		if err != nil {
			return ShardRun{}, err
		}
		return ShardRun{Records: records, Repo: stats}, nil
	}
	j, err := openJournal(path, Fingerprint(systems, cfg), cfg.Shard)
	if err != nil {
		return ShardRun{}, err
	}
	defer j.Close()
	if hook := chaosKillHookFromEnv(); hook != nil {
		j.crash = hook
	}
	records, stats, err := runGrid(systems, cfg, j)
	if err != nil {
		return ShardRun{}, err
	}
	return ShardRun{Records: records, Damaged: j.Discarded(), Repo: stats}, nil
}

func validateShard(cfg Config) error {
	if cfg.Shard == (ShardSpec{}) {
		return nil
	}
	return cfg.Shard.Validate()
}

// chaosKillEnv, when set, makes a sharded run SIGKILL its own process
// at a deterministic journal crash point — the chaos harness's way of
// killing whole shard subprocesses the way a real OOM killer or node
// failure would, with no deferred cleanup and no flushing. The value is
// "<point>@<seq>" where point is one of start, written, torn, synced
// (torn additionally tears the fatal line in half first, the on-disk
// state a kill mid-write leaves). Test machinery only; unset means off.
const chaosKillEnv = "GREENBENCH_CHAOS_KILL"

// chaosKillHookFromEnv builds the journal crash hook the chaos
// environment variable requests, or nil.
func chaosKillHookFromEnv() crashFn {
	val := os.Getenv(chaosKillEnv)
	if val == "" {
		return nil
	}
	point, seqStr, ok := strings.Cut(val, "@")
	if !ok {
		return nil
	}
	seq, err := strconv.Atoi(seqStr)
	if err != nil {
		return nil
	}
	target, torn := "", false
	switch point {
	case "start":
		target = crashAppendStart
	case "written":
		target = crashAppendWritten
	case "synced":
		target = crashAppendSynced
	case "torn":
		target, torn = crashAppendWritten, true
	default:
		return nil
	}
	return func(p string, s int, f *os.File, line []byte) error {
		if p != target || s != seq {
			return nil
		}
		if torn {
			if fi, err := f.Stat(); err == nil {
				f.Truncate(fi.Size() - int64(len(line)/2))
			}
		}
		// SIGKILL ourselves: unlike os.Exit, nothing between the kill and
		// process death runs — the exact failure mode the coordinator's
		// restart machinery must absorb.
		proc, err := os.FindProcess(os.Getpid())
		if err != nil {
			os.Exit(137)
		}
		proc.Kill()
		// The signal is asynchronous; park until it lands so no further
		// journal write can race past the "kill point".
		select {}
	}
}
