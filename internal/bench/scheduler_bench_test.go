package bench

import (
	"math/rand/v2"
	"runtime"
	"testing"
	"time"

	"repro/internal/openml"
)

// benchGridCfg is a small but non-trivial grid: 2 datasets × 2 seeds ×
// 1 budget over the full system lineup (~28 cells), big enough that the
// worker pool has work to schedule and small enough for -benchtime=1x
// smoke runs.
func benchGridCfg(workers int) Config {
	return Config{
		Datasets: openml.Suite()[:2],
		Budgets:  []time.Duration{10 * time.Second},
		Seeds:    2,
		Workers:  workers,
	}
}

func benchmarkRunGrid(b *testing.B, workers int) {
	systems := DefaultSystems()
	cfg := benchGridCfg(workers)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		records := RunGrid(systems, cfg)
		if len(records) == 0 {
			b.Fatal("empty grid")
		}
	}
}

// BenchmarkRunGridSerial pins the single-worker baseline.
func BenchmarkRunGridSerial(b *testing.B) { benchmarkRunGrid(b, 1) }

// BenchmarkRunGridParallel runs the same grid on the full worker pool;
// the serial/parallel ratio is the scheduler's speedup on this machine.
func BenchmarkRunGridParallel(b *testing.B) { benchmarkRunGrid(b, runtime.NumCPU()) }

// BenchmarkRunGridParallel8 fixes the pool at 8 workers — the ratio to
// BenchmarkRunGridSerial is comparable across machines.
func BenchmarkRunGridParallel8(b *testing.B) { benchmarkRunGrid(b, 8) }

// BenchmarkSweepEndToEnd is the end-to-end cost of a small sweep:
// grid plus the paper's bootstrap aggregation, as an experiment driver
// would run it.
func BenchmarkSweepEndToEnd(b *testing.B) {
	systems := DefaultSystems()
	cfg := benchGridCfg(0) // default worker pool
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		records := RunGrid(systems, cfg)
		stats := Aggregate(records, rand.New(rand.NewPCG(1, 2)))
		if len(stats) == 0 {
			b.Fatal("empty aggregation")
		}
	}
}
