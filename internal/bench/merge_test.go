package bench

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
)

// mergeCfg is the merge tests' grid: the chaos grid without hang
// faults, so the dozens of shard runs the property test performs do not
// each pay the watchdog's real-time probe intervals.
func mergeCfg() Config {
	cfg := chaosCfg()
	cfg.Faults.HangRate = 0
	cfg.Watchdog = WatchdogPolicy{}
	return cfg
}

// runShardJournals executes every shard of an n-way split in the given
// completion order and returns the journal paths in that order.
func runShardJournals(t *testing.T, dir string, cfg Config, n int, order []int, workers int) []string {
	t.Helper()
	var paths []string
	for _, i := range order {
		scfg := withWorkers(cfg, workers)
		scfg.Shard = ShardSpec{Index: i, Count: n}
		path := filepath.Join(dir, fmt.Sprintf("s%d-of-%d.jsonl", i, n))
		if _, err := RunShard(chaosSystems(), scfg, path); err != nil {
			t.Fatalf("shard %d/%d: %v", i, n, err)
		}
		paths = append(paths, path)
	}
	return paths
}

// TestMergeDeterminismProperty fuzzes the merge invariant: for random
// shard counts, worker counts, shard completion orders, and journal
// argument orders, the merged records and exports must equal the
// unsharded single-worker oracle byte for byte.
func TestMergeDeterminismProperty(t *testing.T) {
	cfg := mergeCfg()
	systems := chaosSystems()
	want := RunGrid(systems, withWorkers(cfg, 1))
	wantCSV, wantJSON, wantSVG := chaosExports(t, want)
	fingerprint := Fingerprint(systems, cfg)
	refs := EnumerateCellRefs(systems, cfg)

	trials := 10
	if testing.Short() {
		trials = 3
	}
	rng := rand.New(rand.NewPCG(0x6d65, 0x7267))
	for trial := 0; trial < trials; trial++ {
		n := 1 + rng.IntN(5)
		workers := 1 + rng.IntN(4)
		order := rng.Perm(n)
		paths := runShardJournals(t, t.TempDir(), cfg, n, order, workers)
		rng.Shuffle(len(paths), func(i, j int) { paths[i], paths[j] = paths[j], paths[i] })

		res, err := MergeJournals(paths, fingerprint, refs)
		if err != nil {
			t.Fatalf("trial %d (n=%d workers=%d order=%v): %v", trial, n, workers, order, err)
		}
		if len(res.Missing) != 0 || res.Damaged != 0 {
			t.Fatalf("trial %d: clean merge reports %d missing, %d damaged", trial, len(res.Missing), res.Damaged)
		}
		if !reflect.DeepEqual(res.Records, want) {
			t.Fatalf("trial %d (n=%d workers=%d order=%v): merged records differ from oracle", trial, n, workers, order)
		}
		csv, js, svg := chaosExports(t, res.Records)
		if !bytes.Equal(csv, wantCSV) || !bytes.Equal(js, wantJSON) || !bytes.Equal(svg, wantSVG) {
			t.Fatalf("trial %d: merged exports differ from oracle", trial)
		}
	}
}

// TestMergeToleratesOverlapAcrossShardCounts: journals from a 2-way and
// a 4-way split of the same grid overlap heavily; the merge must accept
// the agreement and still reproduce the oracle.
func TestMergeToleratesOverlapAcrossShardCounts(t *testing.T) {
	cfg := mergeCfg()
	systems := chaosSystems()
	want := RunGrid(systems, withWorkers(cfg, 1))
	fingerprint := Fingerprint(systems, cfg)
	refs := EnumerateCellRefs(systems, cfg)

	dir := t.TempDir()
	paths := runShardJournals(t, dir, cfg, 2, []int{0, 1}, 1)
	paths = append(paths, runShardJournals(t, dir, cfg, 4, []int{3, 1, 0, 2}, 2)...)

	res, err := MergeJournals(paths, fingerprint, refs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Records, want) {
		t.Error("overlapping merge differs from oracle")
	}
	if len(res.PerJournal) != 6 {
		t.Errorf("PerJournal reports %d journals, want 6", len(res.PerJournal))
	}
}

// TestMergeRejectsConflictingRecords: two journals disagreeing about
// the same cell is a determinism violation and must refuse to merge,
// never silently pick a side.
func TestMergeRejectsConflictingRecords(t *testing.T) {
	cfg := mergeCfg()
	systems := chaosSystems()
	fingerprint := Fingerprint(systems, cfg)
	refs := EnumerateCellRefs(systems, cfg)

	dir := t.TempDir()
	paths := runShardJournals(t, dir, cfg, 1, []int{0}, 1)

	// Rerun the same whole grid under a journal, then corrupt one record
	// by rewriting a score — with a valid CRC, so only the merge's
	// conflict detection can catch it.
	forged := filepath.Join(dir, "forged.jsonl")
	if _, err := RunShard(systems, withWorkers(cfg, 1), forged); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(forged)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	tampered := false
	for i, line := range lines[1:] {
		if strings.Contains(line, `"TestScore"`) {
			rec, ok := decodeJournalLine(journalVersion, []byte(line))
			if !ok {
				continue
			}
			rec.TestScore += 0.125
			j := &Journal{version: journalVersion}
			reline, err := j.encodeJournalLine(rec)
			if err != nil {
				t.Fatal(err)
			}
			lines[i+1] = strings.TrimSuffix(string(reline), "\n")
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no scored record found to tamper with")
	}
	if err := os.WriteFile(forged, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = MergeJournals(append(paths, forged), fingerprint, refs)
	if err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Errorf("conflicting journals merged (err=%v)", err)
	}
}

// TestMergeRejectsForeignFingerprint: a journal from a different grid
// configuration must refuse to merge.
func TestMergeRejectsForeignFingerprint(t *testing.T) {
	cfg := mergeCfg()
	systems := chaosSystems()
	refs := EnumerateCellRefs(systems, cfg)
	paths := runShardJournals(t, t.TempDir(), cfg, 1, []int{0}, 1)
	_, err := MergeJournals(paths, "feedfacefeedface", refs)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("foreign journal merged (err=%v)", err)
	}
}

// TestMergeReportsMissingCellsAsShardFailures: merging an incomplete
// journal set keeps the grid full-size — the uncovered cells appear in
// Missing and as shard-failure records in the taxonomy, exactly where a
// dead shard's cells land.
func TestMergeReportsMissingCellsAsShardFailures(t *testing.T) {
	cfg := mergeCfg()
	systems := chaosSystems()
	fingerprint := Fingerprint(systems, cfg)
	refs := EnumerateCellRefs(systems, cfg)

	// Run only shard 0 of 2; shard 1's cells are missing.
	paths := runShardJournals(t, t.TempDir(), cfg, 2, []int{0}, 1)
	res, err := MergeJournals(paths, fingerprint, refs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) == 0 {
		t.Fatal("half the grid is absent but Missing is empty")
	}
	if len(res.Records) != len(refs) {
		t.Fatalf("merge returned %d records for a %d-cell grid — missing cells shrank the grid", len(res.Records), len(refs))
	}
	missing := make(map[string]bool, len(res.Missing))
	dead := ShardSpec{Index: 1, Count: 2}
	for _, ref := range res.Missing {
		missing[ref.ID()] = true
		if !dead.Owns(fingerprint, ref.ID()) {
			t.Errorf("missing cell %s is not owned by the absent shard", ref.ID())
		}
	}
	for i, rec := range res.Records {
		id := refs[i].ID()
		if missing[id] {
			if rec.Failure != faults.ShardFailure {
				t.Errorf("missing cell %s recorded as %q, want %q", id, rec.Failure, faults.ShardFailure)
			}
			if rec.Scored() {
				t.Errorf("missing cell %s carries a score", id)
			}
		} else if rec.Failure == faults.ShardFailure {
			t.Errorf("covered cell %s recorded as a shard failure", id)
		}
	}

	// The coordinator's completeness check: the holes are fine if the
	// absent shard is a known casualty, an error otherwise.
	if err := res.VerifyMissingOwnedBy(fingerprint, []ShardSpec{dead}); err != nil {
		t.Errorf("VerifyMissingOwnedBy rejected the dead shard's cells: %v", err)
	}
	if err := res.VerifyMissingOwnedBy(fingerprint, nil); err == nil {
		t.Error("VerifyMissingOwnedBy accepted missing cells with no failed shard to blame")
	}
	if err := res.VerifyMissingOwnedBy(fingerprint, []ShardSpec{{Index: 0, Count: 2}}); err == nil {
		t.Error("VerifyMissingOwnedBy accepted missing cells owned by a *completed* shard")
	}
}

// TestMergeCountsDamage: CRC-damaged interior lines in a shard journal
// surface in the merge result (per journal and in total), and the cells
// stay covered when another journal holds them.
func TestMergeCountsDamage(t *testing.T) {
	cfg := mergeCfg()
	systems := chaosSystems()
	want := RunGrid(systems, withWorkers(cfg, 1))
	fingerprint := Fingerprint(systems, cfg)
	refs := EnumerateCellRefs(systems, cfg)

	dir := t.TempDir()
	paths := runShardJournals(t, dir, cfg, 2, []int{0, 1}, 1)

	// Flip a payload byte in the first record line of shard 0's journal:
	// the CRC no longer matches, so the line reads as damaged.
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("shard journal has %d lines, want header plus at least one record", len(lines))
	}
	record := lines[1]
	record[bytes.IndexByte(record, '{')+1] ^= 0x20
	if err := os.WriteFile(paths[0], bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	// The damaged cell is now covered by no journal (shard journals do
	// not overlap), so it must surface as missing and damaged.
	res, err := MergeJournals(paths, fingerprint, refs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Damaged != 1 {
		t.Errorf("Damaged = %d, want 1", res.Damaged)
	}
	if res.PerJournal[0].Damaged != 1 || res.PerJournal[1].Damaged != 0 {
		t.Errorf("per-journal damage = %d/%d, want 1/0", res.PerJournal[0].Damaged, res.PerJournal[1].Damaged)
	}
	if len(res.Missing) != 1 {
		t.Errorf("Missing = %d cells, want exactly the damaged one", len(res.Missing))
	}

	// A whole-grid journal added to the mix re-covers the damaged cell:
	// damage stays reported, but nothing is missing and the records match
	// the oracle again.
	full := filepath.Join(dir, "full.jsonl")
	if _, err := RunShard(systems, withWorkers(cfg, 1), full); err != nil {
		t.Fatal(err)
	}
	res, err = MergeJournals(append(paths, full), fingerprint, refs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Damaged != 1 {
		t.Errorf("healed merge Damaged = %d, want 1 (damage stays visible)", res.Damaged)
	}
	if len(res.Missing) != 0 {
		t.Errorf("healed merge still missing %d cells", len(res.Missing))
	}
	if !reflect.DeepEqual(res.Records, want) {
		t.Error("healed merge differs from oracle")
	}
}

// TestMergeRejectsEmptyAndAbsentJournals: empty input sets and
// unreadable journals are configuration errors.
func TestMergeRejectsEmptyAndAbsentJournals(t *testing.T) {
	cfg := mergeCfg()
	refs := EnumerateCellRefs(chaosSystems(), cfg)
	if _, err := MergeJournals(nil, "x", refs); err == nil {
		t.Error("empty journal set merged")
	}
	if _, err := MergeJournals([]string{filepath.Join(t.TempDir(), "absent.jsonl")}, "x", refs); err == nil {
		t.Error("absent journal merged")
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeJournals([]string{empty}, "x", refs); err == nil {
		t.Error("zero-byte journal merged")
	}
}
