// Package metaopt implements the paper's development-stage optimizer
// (§2.5, Fig. 2): tuning an AutoML system's *own* parameters for a given
// search-time budget.
//
// The pipeline is exactly the paper's: (1) cluster the candidate datasets
// by metadata features (instances, features, classes, skew) with k-means
// and pick the dataset closest to each centroid as a representative;
// (2) run Bayesian optimization over the AutoML system parameters of CAML
// — the ML hyperparameter search space plus six system parameters —
// scoring each candidate by the relative accuracy improvement over the
// default parameters, summed over representative datasets; (3) prune bad
// candidates early with the median rule after each dataset. Every CAML
// execution inside the loop is charged to the development stage — this is
// the energy Figure 7 reports and that must amortize over later
// executions.
package metaopt

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/automl"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/openml"
	"repro/internal/pipeline"
	"repro/internal/search"
	"repro/internal/tabular"
)

// Options configure one development-stage optimization run.
type Options struct {
	// Budget is the CAML search time the parameters are tuned for — the
	// result is search-time specific (paper §2.5).
	Budget time.Duration
	// TopK is the number of representative datasets (paper default 20).
	TopK int
	// Iterations is the number of BO iterations (paper default 300;
	// Table 9 sweeps 75–600).
	Iterations int
	// RunsPerDataset repeats each CAML run to reduce variance (paper
	// default 2).
	RunsPerDataset int
	// Machine is the hardware model; nil uses the Xeon testbed.
	Machine *hw.Machine
	// Scale is the dataset scale profile; zero value uses DefaultScale.
	Scale openml.ScaleProfile
	// Seed drives all randomness.
	Seed uint64
}

func (o Options) normalized() Options {
	if o.Budget <= 0 {
		o.Budget = 10 * time.Second
	}
	if o.TopK < 1 {
		o.TopK = 20
	}
	if o.Iterations < 1 {
		o.Iterations = 300
	}
	if o.RunsPerDataset < 1 {
		o.RunsPerDataset = 2
	}
	if o.Machine == nil {
		o.Machine = hw.XeonGold6132()
	}
	if o.Scale == (openml.ScaleProfile{}) {
		o.Scale = openml.DefaultScale()
	}
	return o
}

// Result is the outcome of a development-stage optimization.
type Result struct {
	// Params are the tuned CAML parameters for the budget.
	Params automl.CAMLParams
	// Objective is the tuned parameters' relative-improvement score.
	Objective float64
	// DevKWh is the total development-stage energy consumed.
	DevKWh float64
	// DevTime is the total virtual compute time consumed.
	DevTime time.Duration
	// Representatives names the selected representative datasets.
	Representatives []string
	// Trials counts completed (non-pruned) BO trials.
	Trials int
	// Pruned counts median-pruned trials.
	Pruned int
}

// AmortizationRuns estimates after how many tuned-CAML executions the
// development energy pays for itself, given the per-execution energy
// saving (paper §3.7: 21 kWh amortize after 885 runs).
func (r *Result) AmortizationRuns(savingPerRunKWh float64) int {
	if savingPerRunKWh <= 0 {
		return math.MaxInt32
	}
	return int(math.Ceil(r.DevKWh / savingPerRunKWh))
}

// SelectRepresentatives clusters the specs by their metadata vectors and
// returns the spec closest to each of the k centroids (paper Fig. 2).
func SelectRepresentatives(specs []openml.Spec, k int, rng *rand.Rand) []openml.Spec {
	if k >= len(specs) {
		return specs
	}
	points := make([][]float64, len(specs))
	for i, s := range specs {
		points[i] = specMetaVector(s)
	}
	res := search.KMeans(points, k, 40, rng)
	reps := search.ClosestToCentroids(points, res.Centroids)
	out := make([]openml.Spec, 0, len(reps))
	for _, idx := range reps {
		out = append(out, specs[idx])
	}
	return out
}

// specMetaVector renders the metadata features used for clustering:
// log-instances, log-features, log-classes, imbalance, categorical
// fraction.
func specMetaVector(s openml.Spec) []float64 {
	return []float64{
		math.Log(float64(max(s.Rows, 1))),
		math.Log(float64(max(s.Features, 1))),
		math.Log(float64(max(s.Classes, 2))),
		s.Imbalance * 4,
		s.CategoricalFrac * 2,
	}
}

// CAMLSpace is the configuration space of CAML's AutoML system parameters:
// one inclusion flag per model family plus a complexity cap per family
// (the search-space design), and the six scalar system parameters of
// paper §3.7.
func CAMLSpace() *pipeline.Space {
	var params []pipeline.Param
	for _, family := range pipeline.AllModels() {
		params = append(params,
			pipeline.Param{Name: "sys.include." + family, Kind: pipeline.Bool, Default: 1},
			pipeline.Param{Name: "sys.cap." + family, Kind: pipeline.Float, Min: 0.2, Max: 1, Default: 1},
		)
	}
	params = append(params,
		pipeline.Param{Name: "sys.holdout", Kind: pipeline.Float, Min: 0.15, Max: 0.5, Default: 0.33},
		pipeline.Param{Name: "sys.eval_fraction", Kind: pipeline.Float, Min: 0.05, Max: 0.4, Default: 0.1},
		pipeline.Param{Name: "sys.sampling", Kind: pipeline.Int, Min: 0, Max: 1400, Default: 0},
		pipeline.Param{Name: "sys.refit", Kind: pipeline.Bool, Default: 0},
		pipeline.Param{Name: "sys.random_val_split", Kind: pipeline.Bool, Default: 0},
		pipeline.Param{Name: "sys.incremental", Kind: pipeline.Bool, Default: 1},
	)
	return pipeline.NewSpace(params...)
}

// ParamsFromConfig decodes a configuration of CAMLSpace into CAML system
// parameters.
func ParamsFromConfig(cfg pipeline.Config) automl.CAMLParams {
	p := automl.DefaultCAMLParams()
	var models []string
	for _, family := range pipeline.AllModels() {
		if cfg.Bool("sys.include."+family, true) {
			models = append(models, family)
		}
	}
	if len(models) == 0 {
		models = []string{"tree"}
	}
	caps := make(map[string]float64, len(models))
	for _, family := range models {
		if c := cfg.Float("sys.cap."+family, 1); c < 1 {
			caps[family] = c
		}
	}
	p.Spec = pipeline.SpaceSpec{Models: models, DataPreprocessors: true, ComplexityCaps: caps}
	p.HoldoutFrac = cfg.Float("sys.holdout", 0.33)
	p.EvalFraction = cfg.Float("sys.eval_fraction", 0.1)
	p.SampleRows = cfg.Int("sys.sampling", 0)
	if p.SampleRows < 100 {
		p.SampleRows = 0 // tiny values mean "no upfront sampling"
	}
	p.Refit = cfg.Bool("sys.refit", false)
	p.RandomValSplit = cfg.Bool("sys.random_val_split", false)
	p.Incremental = cfg.Bool("sys.incremental", true)
	return p
}

// Optimize runs the development-stage optimization over the given
// candidate dataset specs (normally openml.MetaTrainSuite()).
func Optimize(specs []openml.Spec, opts Options) (*Result, error) {
	opts = opts.normalized()
	if len(specs) == 0 {
		return nil, errors.New("metaopt: no candidate datasets")
	}
	rng := rand.New(rand.NewPCG(opts.Seed, 0xde7))

	reps := SelectRepresentatives(specs, opts.TopK, rng)
	repNames := make([]string, len(reps))

	// Materialize representative datasets and their train/test splits.
	type repData struct {
		train, test tabular.View
	}
	data := make([]repData, len(reps))
	for i, spec := range reps {
		repNames[i] = spec.Name
		ds := openml.Generate(spec, opts.Scale, opts.Seed)
		train, test := ds.All().TrainTestSplit(rng)
		data[i] = repData{train: train, test: test}
	}

	// One development meter accumulates every CAML execution's energy.
	devMeter := energy.NewMeter(opts.Machine, 1)

	// runCAML executes CAML with the given parameters on dataset d and
	// returns the mean test balanced accuracy over RunsPerDataset runs.
	runCAML := func(params automl.CAMLParams, d repData, seed uint64) (float64, error) {
		var sum float64
		for r := 0; r < opts.RunsPerDataset; r++ {
			sys := &automl.CAML{Params: params}
			res, err := sys.Fit(d.train, automl.Options{
				Budget: opts.Budget,
				Meter:  devMeter,
				Seed:   seed + uint64(r)*7919,
			})
			if err != nil {
				return 0, err
			}
			pred, err := res.Predict(d.test, devMeter)
			if err != nil {
				return 0, err
			}
			sum += metrics.BalancedAccuracy(d.test.LabelsInto(nil), pred, d.test.Classes())
		}
		return sum / float64(opts.RunsPerDataset), nil
	}

	// Baseline: default parameters on every representative dataset.
	defaults := automl.DefaultCAMLParams()
	baseline := make([]float64, len(data))
	for i, d := range data {
		acc, err := runCAML(defaults, d, opts.Seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("metaopt: baseline on %s: %w", repNames[i], err)
		}
		baseline[i] = acc
	}

	// BO over the system-parameter space with median pruning across
	// datasets (paper §2.5).
	space := CAMLSpace()
	bo := search.NewBO(space, rng)
	bo.MinObservations = 5
	pruner := search.NewMedianPruner()

	bestObjective := math.Inf(-1)
	bestParams := defaults
	trials, pruned := 0, 0

	for it := 0; it < opts.Iterations; it++ {
		cfg, _ := bo.Suggest() //greenlint:allow meteredcost surrogate cost is development-side and negligible vs CAML runs
		params := ParamsFromConfig(cfg)
		objective := 0.0
		stepValues := make([]float64, 0, len(data))
		wasPruned := false
		for i, d := range data {
			acc, err := runCAML(params, d, opts.Seed+uint64(1000+it*31+i))
			if err != nil {
				wasPruned = true
				break
			}
			// Relative improvement over the default parameters
			// (paper §2.5's objective).
			denom := math.Max(acc, baseline[i])
			if denom > 0 {
				objective += (acc - baseline[i]) / denom
			}
			stepValues = append(stepValues, objective)
			if pruner.ShouldPrune(i, objective) {
				wasPruned = true
				break
			}
		}
		if wasPruned {
			pruned++
			bo.Observe(cfg, objective-1) // penalized partial score
			continue
		}
		trials++
		pruner.CompleteTrial(stepValues)
		bo.Observe(cfg, objective)
		if objective > bestObjective {
			bestObjective = objective
			bestParams = params
		}
	}

	// All energy the optimization consumed is development-stage energy:
	// fold the meter's execution/inference charges into one number.
	devKWh := devMeter.Tracker().TotalKWh()

	return &Result{
		Params:          bestParams,
		Objective:       bestObjective,
		DevKWh:          devKWh,
		DevTime:         devMeter.Clock().Now(),
		Representatives: repNames,
		Trials:          trials,
		Pruned:          pruned,
	}, nil
}
