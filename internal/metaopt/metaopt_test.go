package metaopt

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/automl"
	"repro/internal/openml"
	"repro/internal/pipeline"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x0de)) }

func TestSelectRepresentatives(t *testing.T) {
	specs := openml.MetaTrainSuite()
	reps := SelectRepresentatives(specs, 10, testRNG(1))
	if len(reps) != 10 {
		t.Fatalf("selected %d representatives, want 10", len(reps))
	}
	seen := map[string]bool{}
	for _, r := range reps {
		if seen[r.Name] {
			t.Errorf("representative %s selected twice", r.Name)
		}
		seen[r.Name] = true
	}
	// The representatives must span the size spectrum, not collapse to
	// one cluster.
	minRows, maxRows := math.MaxInt, 0
	for _, r := range reps {
		if r.Rows < minRows {
			minRows = r.Rows
		}
		if r.Rows > maxRows {
			maxRows = r.Rows
		}
	}
	if maxRows < 10*minRows {
		t.Errorf("representatives span only %d..%d rows — clustering failed to diversify", minRows, maxRows)
	}
	// k >= len returns everything.
	if got := SelectRepresentatives(specs[:5], 10, testRNG(2)); len(got) != 5 {
		t.Errorf("oversized k returned %d specs", len(got))
	}
}

func TestCAMLSpaceShape(t *testing.T) {
	space := CAMLSpace()
	// One include flag and one complexity cap per family, plus the six
	// system parameters of paper §3.7.
	want := 2*len(pipeline.AllModels()) + 6
	if len(space.Params) != want {
		t.Errorf("space has %d parameters, want %d", len(space.Params), want)
	}
	for _, name := range []string{"sys.holdout", "sys.eval_fraction", "sys.sampling", "sys.refit", "sys.random_val_split", "sys.incremental"} {
		if _, ok := space.Lookup(name); !ok {
			t.Errorf("system parameter %s missing", name)
		}
	}
}

func TestParamsFromConfig(t *testing.T) {
	space := CAMLSpace()
	cfg := space.Default()
	// Exclude every family but two, cap one of them.
	for _, family := range pipeline.AllModels() {
		cfg["sys.include."+family] = 0
	}
	cfg["sys.include.tree"] = 1
	cfg["sys.include.random_forest"] = 1
	cfg["sys.cap.random_forest"] = 0.5
	cfg["sys.holdout"] = 0.25
	cfg["sys.sampling"] = 600
	cfg["sys.refit"] = 1
	cfg["sys.random_val_split"] = 1
	cfg["sys.incremental"] = 0

	p := ParamsFromConfig(cfg)
	if len(p.Spec.Models) != 2 {
		t.Fatalf("models %v, want tree + random_forest", p.Spec.Models)
	}
	if p.Spec.ComplexityCaps["random_forest"] != 0.5 {
		t.Errorf("caps %v", p.Spec.ComplexityCaps)
	}
	if p.HoldoutFrac != 0.25 || p.SampleRows != 600 || !p.Refit || !p.RandomValSplit || p.Incremental {
		t.Errorf("decoded params %+v", p)
	}
	// The decoded spec must produce a working space.
	if _, err := p.Spec.Space(); err != nil {
		t.Errorf("decoded spec invalid: %v", err)
	}
}

func TestParamsFromConfigNeverEmpty(t *testing.T) {
	cfg := CAMLSpace().Default()
	for _, family := range pipeline.AllModels() {
		cfg["sys.include."+family] = 0
	}
	p := ParamsFromConfig(cfg)
	if len(p.Spec.Models) == 0 {
		t.Error("all-excluded config produced an empty model list")
	}
	// Tiny sampling values mean "off".
	cfg["sys.sampling"] = 50
	if got := ParamsFromConfig(cfg).SampleRows; got != 0 {
		t.Errorf("sampling 50 decoded to %d, want 0 (off)", got)
	}
}

func TestOptimizeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("optimization loop is slow")
	}
	specs := openml.MetaTrainSuite()[:20]
	res, err := Optimize(specs, Options{
		Budget:         5 * time.Second,
		TopK:           3,
		Iterations:     6,
		RunsPerDataset: 1,
		Scale:          openml.SmallScale(),
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Representatives) != 3 {
		t.Errorf("representatives %v", res.Representatives)
	}
	if res.DevKWh <= 0 {
		t.Error("development consumed no energy — Fig. 7 depends on this being tracked")
	}
	if res.DevTime <= 0 {
		t.Error("development consumed no virtual time")
	}
	if res.Trials+res.Pruned == 0 {
		t.Error("no trials ran")
	}
	// The tuned parameters must construct a working system.
	sys := automl.NewTunedCAML(res.Params)
	if sys.Name() != "CAML(tuned)" {
		t.Errorf("tuned system name %q", sys.Name())
	}
}

func TestOptimizeValidation(t *testing.T) {
	if _, err := Optimize(nil, Options{}); err == nil {
		t.Error("empty spec list accepted")
	}
}

func TestAmortizationRuns(t *testing.T) {
	r := &Result{DevKWh: 21}
	// The paper's own numbers: 21 kWh amortize after 885 runs at a
	// ~0.0237 kWh/run saving.
	if got := r.AmortizationRuns(21.0 / 885); got != 885 {
		t.Errorf("amortization %d runs, want 885", got)
	}
	if got := r.AmortizationRuns(0); got != math.MaxInt32 {
		t.Errorf("zero saving amortization %d, want MaxInt32", got)
	}
	if got := r.AmortizationRuns(-1); got != math.MaxInt32 {
		t.Errorf("negative saving amortization %d", got)
	}
}
