package openml

import (
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/tabular"
)

// ScaleProfile controls how published dataset sizes map to generated sizes.
// The defaults keep the full experiment grid laptop-sized while preserving
// the suite's relative ordering by rows, features and classes.
type ScaleProfile struct {
	// RowExponent scales rows as rows^RowExponent.
	RowExponent float64
	// MinRows and MaxRows clamp the scaled row count.
	MinRows, MaxRows int
	// FeatureExponent scales features as features^FeatureExponent.
	FeatureExponent float64
	// MinFeatures and MaxFeatures clamp the scaled feature count.
	MinFeatures, MaxFeatures int
	// MaxClasses caps the scaled class count. Classes above 12 are
	// compressed (12 + sqrt(excess)) before capping so that many-class
	// tasks like dionis (355 classes) stay many-class without drowning
	// the row budget.
	MaxClasses int
}

// DefaultScale returns the profile used by the benchmark harness.
func DefaultScale() ScaleProfile {
	return ScaleProfile{
		RowExponent: 0.58, MinRows: 100, MaxRows: 1600,
		FeatureExponent: 0.72, MinFeatures: 4, MaxFeatures: 60,
		MaxClasses: 30,
	}
}

// SmallScale returns a reduced profile for unit tests and quick smoke runs.
func SmallScale() ScaleProfile {
	return ScaleProfile{
		RowExponent: 0.45, MinRows: 80, MaxRows: 400,
		FeatureExponent: 0.55, MinFeatures: 3, MaxFeatures: 24,
		MaxClasses: 12,
	}
}

// Apply returns the scaled (rows, features, classes) for a spec.
func (p ScaleProfile) Apply(s Spec) (rows, features, classes int) {
	rows = clampInt(int(math.Round(math.Pow(float64(s.Rows), p.RowExponent))), p.MinRows, p.MaxRows)
	features = clampInt(int(math.Round(math.Pow(float64(s.Features), p.FeatureExponent))), p.MinFeatures, p.MaxFeatures)
	classes = s.Classes
	if classes > 12 {
		classes = 12 + int(math.Round(math.Sqrt(float64(classes-12))))
	}
	if classes > p.MaxClasses {
		classes = p.MaxClasses
	}
	if classes < 2 {
		classes = 2
	}
	// Guarantee enough rows for stratified splitting and per-class
	// evaluation.
	if min := 18 * classes; rows < min {
		rows = min
	}
	return rows, features, classes
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Generate materializes the dataset described by spec under the given scale
// profile. Generation is fully deterministic in (spec.ID, seed).
//
// The generator produces a Gaussian-mixture classification task: each class
// owns ClustersPerClass latent clusters (multiple clusters make classes
// non-convex, which separates tree ensembles from linear models exactly as
// real tabular benchmarks do); observed features are a random linear
// projection of the latent point plus noise; a fraction of features carries
// no signal; a fraction is discretized into categorical codes; a fraction
// of labels is flipped.
func Generate(spec Spec, profile ScaleProfile, seed uint64) *tabular.Frame {
	deriveKnobs(&spec)
	rows, features, classes := profile.Apply(spec)
	rng := rand.New(rand.NewPCG(uint64(spec.ID)*0x9E3779B9, seed))

	latentDim := int(math.Round(float64(features) * (1 - spec.IrrelevantFrac)))
	if latentDim > 12 {
		latentDim = 12
	}
	if latentDim < 2 {
		latentDim = 2
	}
	informative := int(math.Round(float64(features) * (1 - spec.IrrelevantFrac)))
	if informative < 2 {
		informative = min(2, features)
	}
	if informative > features {
		informative = features
	}

	// Class priors: geometric skew controlled by Imbalance.
	priors := make([]float64, classes)
	ratio := 1 - spec.Imbalance
	if ratio < 0.05 {
		ratio = 0.05
	}
	total := 0.0
	for k := range priors {
		priors[k] = math.Pow(ratio, float64(k))
		total += priors[k]
	}
	for k := range priors {
		priors[k] /= total
	}

	// Cluster centers per class.
	centers := make([][][]float64, classes)
	for k := range centers {
		centers[k] = make([][]float64, spec.ClustersPerClass)
		for c := range centers[k] {
			center := make([]float64, latentDim)
			for l := range center {
				center[l] = spec.Separation * rng.NormFloat64()
			}
			centers[k][c] = center
		}
	}

	// Projection matrix latent -> informative features.
	w := make([][]float64, informative)
	scale := 1 / math.Sqrt(float64(latentDim))
	for j := range w {
		w[j] = make([]float64, latentDim)
		for l := range w[j] {
			w[j][l] = scale * rng.NormFloat64()
		}
	}

	// Rows are generated in row order (the RNG draw sequence is part of
	// the determinism contract) but written straight into the frame's
	// columns — no row-major intermediate.
	f := tabular.NewFrame(spec.Name, rows, features)
	f.Y = make([]int, rows)
	f.Classes = classes
	latent := make([]float64, latentDim)
	for i := 0; i < rows; i++ {
		k := sampleClass(priors, rng)
		// Guarantee every class appears at least once by round-robin
		// seeding the first `classes` rows.
		if i < classes {
			k = i
		}
		f.Y[i] = k
		center := centers[k][rng.IntN(len(centers[k]))]
		for l := range latent {
			latent[l] = center[l] + rng.NormFloat64()
		}
		for j := 0; j < informative; j++ {
			var dot float64
			for l := range latent {
				dot += w[j][l] * latent[l]
			}
			f.Cols[j][i] = dot + spec.Noise*rng.NormFloat64()
		}
		for j := informative; j < features; j++ {
			f.Cols[j][i] = rng.NormFloat64()
		}
	}

	// Label noise.
	flips := int(float64(rows) * spec.LabelNoise)
	for fl := 0; fl < flips; fl++ {
		f.Y[rng.IntN(rows)] = rng.IntN(classes)
	}

	// Discretize a spread-out subset of columns into categorical codes.
	nCat := int(math.Round(spec.CategoricalFrac * float64(features)))
	if nCat > 0 {
		f.Kinds = make([]tabular.FeatureKind, features)
		converted := 0
		for j := 0; j < features && converted < nCat; j++ {
			// Spread conversions over informative and irrelevant
			// columns alike.
			if (j*2654435761)%features < nCat {
				cardinality := 2 + rng.IntN(7)
				discretizeColumn(f.Cols[j], cardinality)
				f.Kinds[j] = tabular.Categorical
				converted++
			}
		}
	}
	return f
}

// discretizeColumn replaces the column's values with quantile-bin codes
// in [0, cardinality), in place.
func discretizeColumn(col []float64, cardinality int) {
	sorted := append([]float64(nil), col...)
	sort.Float64s(sorted)
	thresholds := make([]float64, cardinality-1)
	for b := 1; b < cardinality; b++ {
		pos := b * len(sorted) / cardinality
		if pos >= len(sorted) {
			pos = len(sorted) - 1
		}
		thresholds[b-1] = sorted[pos]
	}
	for i, v := range col {
		code := 0
		for _, t := range thresholds {
			if v > t {
				code++
			}
		}
		col[i] = float64(code)
	}
}

func sampleClass(priors []float64, rng *rand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for k, p := range priors {
		acc += p
		if u < acc {
			return k
		}
	}
	return len(priors) - 1
}

// LoadSuite generates the full 39-dataset test suite.
func LoadSuite(profile ScaleProfile, seed uint64) []*tabular.Frame {
	specs := Suite()
	out := make([]*tabular.Frame, len(specs))
	for i, s := range specs {
		out[i] = Generate(s, profile, seed)
	}
	return out
}
