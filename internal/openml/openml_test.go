package openml

import (
	"math"
	mathrand "math/rand" //greenlint:allow globalrand testing/quick needs a v1 *rand.Rand; the source is explicitly seeded
	"testing"
	"testing/quick"

	"repro/internal/tabular"
)

func TestSuiteMatchesTable2(t *testing.T) {
	specs := Suite()
	if len(specs) != 39 {
		t.Fatalf("suite has %d datasets, want 39 (paper Table 2)", len(specs))
	}
	// Spot-check the published signatures.
	checks := map[string]struct{ id, rows, features, classes int }{
		"robert":                           {41165, 10000, 7200, 10},
		"Fashion-MNIST":                    {40996, 70000, 784, 10},
		"dionis":                           {41167, 416188, 60, 355},
		"covertype":                        {1596, 581012, 54, 7},
		"credit-g":                         {31, 1000, 20, 2},
		"blood-transfusion-service-center": {1464, 748, 4, 2},
	}
	byName := map[string]Spec{}
	for _, s := range specs {
		byName[s.Name] = s
	}
	for name, want := range checks {
		s, ok := byName[name]
		if !ok {
			t.Errorf("dataset %s missing", name)
			continue
		}
		if s.ID != want.id || s.Rows != want.rows || s.Features != want.features || s.Classes != want.classes {
			t.Errorf("%s = id %d n %d d %d k %d, want %+v", name, s.ID, s.Rows, s.Features, s.Classes, want)
		}
	}
	// IDs must be unique.
	ids := map[int]string{}
	for _, s := range specs {
		if other, dup := ids[s.ID]; dup {
			t.Errorf("ID %d shared by %s and %s", s.ID, s.Name, other)
		}
		ids[s.ID] = s.Name
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("adult")
	if !ok || s.ID != 1590 {
		t.Fatalf("ByName(adult) = %+v, %v", s, ok)
	}
	if s.Separation == 0 || s.Noise == 0 {
		t.Error("knobs not derived")
	}
	if _, ok := ByName("no-such-dataset"); ok {
		t.Error("unknown name resolved")
	}
}

func TestMetaTrainSuite(t *testing.T) {
	specs := MetaTrainSuite()
	if len(specs) != 124 {
		t.Fatalf("meta-train suite has %d datasets, want 124 (paper §3.7)", len(specs))
	}
	minRows, maxRows := math.MaxInt, 0
	for _, s := range specs {
		if s.Classes != 2 {
			t.Errorf("%s has %d classes, want binary", s.Name, s.Classes)
		}
		if s.Rows < minRows {
			minRows = s.Rows
		}
		if s.Rows > maxRows {
			maxRows = s.Rows
		}
	}
	if maxRows < 50*minRows {
		t.Errorf("meta-train sizes span only %d..%d — want a wide spectrum", minRows, maxRows)
	}
}

func TestScaleProfiles(t *testing.T) {
	p := DefaultScale()
	spec, _ := ByName("covertype") // 581012 rows: must clamp
	rows, features, classes := p.Apply(spec)
	if rows != p.MaxRows {
		t.Errorf("covertype rows %d, want clamp to %d", rows, p.MaxRows)
	}
	if features < p.MinFeatures || features > p.MaxFeatures {
		t.Errorf("features %d outside [%d,%d]", features, p.MinFeatures, p.MaxFeatures)
	}
	if classes != 7 {
		t.Errorf("covertype classes %d, want 7 (below compression threshold)", classes)
	}
	// Many-class compression: dionis has 355 classes.
	spec, _ = ByName("dionis")
	_, _, classes = p.Apply(spec)
	if classes <= 12 || classes > p.MaxClasses {
		t.Errorf("dionis scaled classes %d, want in (12,%d]", classes, p.MaxClasses)
	}
	// Row floor guarantees stratified splits.
	rows, _, classes = p.Apply(Spec{ID: 1, Rows: 10, Features: 3, Classes: 8})
	if rows < 18*classes {
		t.Errorf("row floor violated: %d rows for %d classes", rows, classes)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	spec, _ := ByName("credit-g")
	a := Generate(spec, SmallScale(), 7)
	b := Generate(spec, SmallScale(), 7)
	if a.Rows() != b.Rows() {
		t.Fatal("row counts differ across identical generations")
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
	for j := range a.Cols {
		for i := range a.Cols[j] {
			if a.Cols[j][i] != b.Cols[j][i] {
				t.Fatalf("cell (%d,%d) differs", i, j)
			}
		}
	}
	c := Generate(spec, SmallScale(), 8)
	same := true
	for i := range a.Y {
		if a.Y[i] != c.Y[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical labels")
	}
}

func TestGenerateValidity(t *testing.T) {
	for _, spec := range Suite() {
		ds := Generate(spec, SmallScale(), 1)
		if err := ds.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
			continue
		}
		counts := ds.ClassCounts()
		for c, n := range counts {
			if n == 0 {
				t.Errorf("%s: class %d absent", spec.Name, c)
			}
		}
	}
}

func TestGenerateCategoricalColumns(t *testing.T) {
	spec, _ := ByName("car") // fully categorical in Table 2
	ds := Generate(spec, SmallScale(), 3)
	if ds.NumCategorical() == 0 {
		t.Fatal("car generated without categorical columns")
	}
	for j := 0; j < ds.Features(); j++ {
		if ds.Kind(j) != tabular.Categorical {
			continue
		}
		seen := map[float64]bool{}
		for _, v := range ds.Cols[j] {
			if v != math.Trunc(v) || v < 0 {
				t.Fatalf("categorical cell %v is not a non-negative integer code", v)
			}
			seen[v] = true
		}
		if len(seen) < 2 || len(seen) > 8 {
			t.Errorf("column %d has %d distinct codes, want 2..8", j, len(seen))
		}
	}
}

func TestGenerateImbalance(t *testing.T) {
	spec, _ := ByName("KDDCup09_appetency") // imbalance 0.9
	ds := Generate(spec, DefaultScale(), 2)
	counts := ds.ClassCounts()
	minority := math.Min(float64(counts[0]), float64(counts[1]))
	frac := minority / float64(ds.Rows())
	if frac > 0.2 {
		t.Errorf("KDDCup09 minority fraction %.3f, want heavy skew (< 0.2)", frac)
	}
	balancedSpec, _ := ByName("segment")
	bal := Generate(balancedSpec, DefaultScale(), 2)
	balCounts := bal.ClassCounts()
	lo, hi := math.Inf(1), 0.0
	for _, c := range balCounts {
		lo = math.Min(lo, float64(c))
		hi = math.Max(hi, float64(c))
	}
	if lo/hi < 0.4 {
		t.Errorf("segment class ratio %.2f, want roughly balanced", lo/hi)
	}
}

// TestScaleMonotone property-checks that scaling preserves the suite's
// relative size ordering.
func TestScaleMonotone(t *testing.T) {
	p := DefaultScale()
	property := func(a, b uint32) bool {
		ra, rb := int(a%1_000_000)+20, int(b%1_000_000)+20
		sa := Spec{ID: 1, Rows: ra, Features: 10, Classes: 2}
		sb := Spec{ID: 2, Rows: rb, Features: 10, Classes: 2}
		rowsA, _, _ := p.Apply(sa)
		rowsB, _, _ := p.Apply(sb)
		if ra <= rb {
			return rowsA <= rowsB
		}
		return rowsA >= rowsB
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200, Rand: mathrand.New(mathrand.NewSource(77))}); err != nil {
		t.Error(err)
	}
}

func TestDeriveKnobsHighDimensionalIrrelevance(t *testing.T) {
	wide, _ := ByName("robert") // 7200 features
	narrow, _ := ByName("phoneme")
	if wide.IrrelevantFrac <= narrow.IrrelevantFrac {
		t.Errorf("wide dataset irrelevance %.2f not above narrow %.2f (FLAML's pruning should pay off there)",
			wide.IrrelevantFrac, narrow.IrrelevantFrac)
	}
}

func TestLoadSuite(t *testing.T) {
	suite := LoadSuite(SmallScale(), 5)
	if len(suite) != 39 {
		t.Fatalf("loaded %d datasets, want 39", len(suite))
	}
	names := map[string]bool{}
	for _, ds := range suite {
		if err := ds.Validate(); err != nil {
			t.Errorf("%s: %v", ds.Name, err)
		}
		if names[ds.Name] {
			t.Errorf("duplicate dataset %s", ds.Name)
		}
		names[ds.Name] = true
	}
}
