// Package openml provides deterministic synthetic replicas of the OpenML
// datasets used in the paper.
//
// The paper evaluates on the 39 AMLB benchmark datasets (Table 2) and
// meta-optimizes on 124 binary classification datasets from OpenML. This
// environment has no network access and no OpenML data, so each dataset is
// replaced by a synthetic generator parameterized by the dataset's
// published signature — rows, features, classes — plus difficulty knobs
// (cluster structure, noise, irrelevant features, categorical fraction,
// class imbalance) derived deterministically from the OpenML dataset ID.
// Generated datasets are scaled down so that the paper's full experiment
// grid replays on a laptop; the scaling preserves the *relative* size
// ordering of the suite, which is what drives the paper's energy results.
package openml

import (
	"fmt"
	"math"
)

// Spec describes one dataset of the suite: its published signature and the
// generation knobs derived from it.
type Spec struct {
	// Name is the OpenML dataset name as printed in paper Table 2.
	Name string
	// ID is the OpenML dataset ID.
	ID int
	// Rows, Features, Classes are the published full-size dimensions.
	Rows, Features, Classes int

	// Generation knobs; zero values are filled by deriveKnobs.

	// ClustersPerClass controls class shape complexity (non-convexity).
	ClustersPerClass int
	// Separation scales the distance between class clusters; lower is
	// harder.
	Separation float64
	// Noise is the feature noise standard deviation.
	Noise float64
	// LabelNoise is the fraction of labels flipped uniformly at random.
	LabelNoise float64
	// IrrelevantFrac is the fraction of features carrying no signal.
	IrrelevantFrac float64
	// CategoricalFrac is the fraction of features emitted as categorical
	// codes.
	CategoricalFrac float64
	// Imbalance in [0,1): 0 is balanced; larger values skew the class
	// prior geometrically.
	Imbalance float64
}

// String implements fmt.Stringer.
func (s Spec) String() string {
	return fmt.Sprintf("%s(id=%d,n=%d,d=%d,k=%d)", s.Name, s.ID, s.Rows, s.Features, s.Classes)
}

// table2 is the verbatim dataset list of paper Table 2 ("OpenML Test
// datasets"). Hand-tuned knobs capture documented properties: e.g.
// KDDCup09_appetency and APSFailure are heavily imbalanced binary tasks,
// credit-g is mildly imbalanced, numerai28.6 is near-random.
var table2 = []Spec{
	{Name: "robert", ID: 41165, Rows: 10000, Features: 7200, Classes: 10},
	{Name: "riccardo", ID: 41161, Rows: 20000, Features: 4296, Classes: 2},
	{Name: "guillermo", ID: 41159, Rows: 20000, Features: 4296, Classes: 2},
	{Name: "dilbert", ID: 41163, Rows: 10000, Features: 2000, Classes: 5},
	{Name: "christine", ID: 41142, Rows: 5418, Features: 1636, Classes: 2},
	{Name: "cnae-9", ID: 1468, Rows: 1080, Features: 856, Classes: 9},
	{Name: "fabert", ID: 41164, Rows: 8237, Features: 800, Classes: 7},
	{Name: "Fashion-MNIST", ID: 40996, Rows: 70000, Features: 784, Classes: 10},
	{Name: "KDDCup09_appetency", ID: 1111, Rows: 50000, Features: 230, Classes: 2, Imbalance: 0.9},
	{Name: "mfeat-factors", ID: 12, Rows: 2000, Features: 216, Classes: 10},
	{Name: "volkert", ID: 41166, Rows: 58310, Features: 180, Classes: 10},
	{Name: "APSFailure", ID: 41138, Rows: 76000, Features: 170, Classes: 2, Imbalance: 0.9},
	{Name: "jasmine", ID: 41143, Rows: 2984, Features: 144, Classes: 2},
	{Name: "nomao", ID: 1486, Rows: 34465, Features: 118, Classes: 2},
	{Name: "albert", ID: 41147, Rows: 425240, Features: 78, Classes: 2},
	{Name: "dionis", ID: 41167, Rows: 416188, Features: 60, Classes: 355},
	{Name: "jannis", ID: 41168, Rows: 83733, Features: 54, Classes: 4},
	{Name: "covertype", ID: 1596, Rows: 581012, Features: 54, Classes: 7},
	{Name: "MiniBooNE", ID: 41150, Rows: 130064, Features: 50, Classes: 2},
	{Name: "connect-4", ID: 40668, Rows: 67557, Features: 42, Classes: 3, CategoricalFrac: 1},
	{Name: "kr-vs-kp", ID: 3, Rows: 3196, Features: 36, Classes: 2, CategoricalFrac: 1},
	{Name: "higgs", ID: 23512, Rows: 98050, Features: 28, Classes: 2},
	{Name: "helena", ID: 41169, Rows: 65196, Features: 27, Classes: 100},
	{Name: "kc1", ID: 1067, Rows: 2109, Features: 21, Classes: 2, Imbalance: 0.6},
	{Name: "numerai28.6", ID: 23517, Rows: 96320, Features: 21, Classes: 2, Separation: 0.35, LabelNoise: 0.25},
	{Name: "credit-g", ID: 31, Rows: 1000, Features: 20, Classes: 2, Imbalance: 0.4, CategoricalFrac: 0.6},
	{Name: "sylvine", ID: 41146, Rows: 5124, Features: 20, Classes: 2},
	{Name: "segment", ID: 40984, Rows: 2310, Features: 16, Classes: 7},
	{Name: "vehicle", ID: 54, Rows: 846, Features: 18, Classes: 4},
	{Name: "bank-marketing", ID: 1461, Rows: 45211, Features: 16, Classes: 2, Imbalance: 0.75, CategoricalFrac: 0.5},
	{Name: "Australian", ID: 40981, Rows: 690, Features: 14, Classes: 2, CategoricalFrac: 0.5},
	{Name: "adult", ID: 1590, Rows: 48842, Features: 14, Classes: 2, Imbalance: 0.5, CategoricalFrac: 0.55},
	{Name: "Amazon_employee_access", ID: 4135, Rows: 32769, Features: 9, Classes: 2, Imbalance: 0.85, CategoricalFrac: 1},
	{Name: "shuttle", ID: 40685, Rows: 58000, Features: 9, Classes: 7, Imbalance: 0.85},
	{Name: "airlines", ID: 1169, Rows: 539383, Features: 7, Classes: 2, CategoricalFrac: 0.45},
	{Name: "car", ID: 40975, Rows: 1728, Features: 6, Classes: 4, Imbalance: 0.6, CategoricalFrac: 1},
	{Name: "jungle_chess_2pcs_raw_endgame_complete", ID: 41027, Rows: 44819, Features: 6, Classes: 3},
	{Name: "phoneme", ID: 1489, Rows: 5404, Features: 5, Classes: 2, Imbalance: 0.4},
	{Name: "blood-transfusion-service-center", ID: 1464, Rows: 748, Features: 4, Classes: 2, Imbalance: 0.5},
}

// Suite returns the 39 test dataset specs of paper Table 2 with all
// generation knobs filled in.
func Suite() []Spec {
	specs := make([]Spec, len(table2))
	for i, s := range table2 {
		deriveKnobs(&s)
		specs[i] = s
	}
	return specs
}

// ByName returns the spec with the given Table 2 name.
func ByName(name string) (Spec, bool) {
	for _, s := range table2 {
		if s.Name == name {
			deriveKnobs(&s)
			return s, true
		}
	}
	return Spec{}, false
}

// MetaTrainSuite returns the 124 binary classification datasets the paper
// draws from OpenML for development-stage optimization (§3.7). The specs
// are synthetic: sizes and difficulties are sampled deterministically to
// cover the same spectrum as the test suite (small to large, easy to hard,
// balanced to skewed).
func MetaTrainSuite() []Spec {
	const n = 124
	specs := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		h := splitmix(uint64(9000 + i))
		rows := int(200 * math.Pow(1.06, float64(i))) // 200 ... ~270k, log-spaced
		features := 4 + int(h%97)
		s := Spec{
			Name:     fmt.Sprintf("meta-%03d", i),
			ID:       900000 + i,
			Rows:     rows,
			Features: features,
			Classes:  2,
		}
		h2 := splitmix(h)
		if h2%4 == 0 {
			s.Imbalance = 0.3 + float64(h2%50)/100
		}
		if h2%3 == 0 {
			s.CategoricalFrac = float64(h2%60) / 100
		}
		deriveKnobs(&s)
		specs = append(specs, s)
	}
	return specs
}

// deriveKnobs fills zero-valued knobs deterministically from the spec's ID
// so that each dataset has a stable, individual difficulty profile.
func deriveKnobs(s *Spec) {
	h := splitmix(uint64(s.ID))
	u := func() float64 { h = splitmix(h); return float64(h%1_000_000) / 1_000_000 }
	if s.ClustersPerClass == 0 {
		s.ClustersPerClass = 1 + int(h%3) // 1..3
	}
	if s.Separation == 0 {
		s.Separation = 1.0 + 1.4*u()
	}
	if s.Noise == 0 {
		s.Noise = 0.4 + 0.8*u()
	}
	if s.LabelNoise == 0 {
		s.LabelNoise = 0.02 + 0.10*u()
	}
	if s.IrrelevantFrac == 0 {
		s.IrrelevantFrac = 0.1 + 0.4*u()
	}
	// Wide tasks have proportionally more uninformative columns, matching
	// the real high-dimensional AMLB tasks where feature pruning pays off
	// (the paper notes FLAML's pruning helps for > 2k features).
	if s.Features > 500 {
		s.IrrelevantFrac = math.Min(0.9, s.IrrelevantFrac+0.35)
	}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
