package faults

import (
	"errors"
	"testing"
	"time"

	"repro/internal/automl"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/openml"
	"repro/internal/tabular"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if in != New(Config{}) {
		t.Error("disabled config should yield a nil injector")
	}
	if !in.CellPlan("S", "d", time.Second, 0, 0).Empty() {
		t.Error("nil injector produced a plan")
	}
	if in.DatasetFault("d", 1, 0) != nil {
		t.Error("nil injector produced a dataset fault")
	}
	if in.CheckOOM("d", 1<<20, 1<<20) != nil {
		t.Error("nil injector produced an OOM")
	}
}

func TestCellPlanDeterministicAndOrderIndependent(t *testing.T) {
	a := New(Config{Rate: 0.5, Seed: 42})
	b := New(Config{Rate: 0.5, Seed: 42})
	// Drain unrelated sites on b first: decisions must not depend on
	// call order.
	for i := uint64(0); i < 20; i++ {
		b.CellPlan("other", "other", time.Minute, i, 0)
	}
	for seed := uint64(0); seed < 50; seed++ {
		pa := a.CellPlan("CAML", "adult", 10*time.Second, seed, 0)
		pb := b.CellPlan("CAML", "adult", 10*time.Second, seed, 0)
		if pa != pb {
			t.Fatalf("seed %d: plans diverge: %+v vs %+v", seed, pa, pb)
		}
	}
}

func TestCellPlanRateBounds(t *testing.T) {
	always := New(Config{Rate: 1, Seed: 1})
	hits := 0
	for seed := uint64(0); seed < 40; seed++ {
		if !always.CellPlan("S", "d", time.Second, seed, 0).Empty() {
			hits++
		}
	}
	if hits != 40 {
		t.Errorf("rate 1 fired %d/40 times", hits)
	}
	// A fired plan carries exactly one fault kind.
	p := always.CellPlan("S", "d", time.Second, 0, 0)
	kinds := 0
	for _, b := range []bool{p.FitPanic, p.FitError, p.PredictError, p.DropoutFrac > 0} {
		if b {
			kinds++
		}
	}
	if kinds != 1 {
		t.Errorf("plan %+v carries %d kinds, want 1", p, kinds)
	}
}

func TestDatasetFaultClearsOnRetry(t *testing.T) {
	in := New(Config{Rate: 0.3, Seed: 9})
	// With per-attempt redraws, some attempt within a small horizon must
	// succeed for every dataset.
	for _, name := range []string{"adult", "credit-g", "dionis"} {
		ok := false
		for attempt := 0; attempt < 8; attempt++ {
			if in.DatasetFault(name, 1, attempt) == nil {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("dataset %s never generated in 8 attempts at rate 0.3", name)
		}
	}
	err := New(Config{Rate: 1, Seed: 9}).DatasetFault("adult", 1, 0)
	if KindOf(err, None) != DatasetError {
		t.Errorf("kind %q, want dataset-error", KindOf(err, None))
	}
}

func TestCheckOOM(t *testing.T) {
	in := New(Config{MemoryBytes: WorkingSetBytes(1000, 10)})
	if err := in.CheckOOM("small", 1000, 10); err != nil {
		t.Errorf("working set at the limit OOMed: %v", err)
	}
	err := in.CheckOOM("big", 2000, 10)
	if err == nil || err.Kind != OOM {
		t.Fatalf("oversized working set not killed: %v", err)
	}
}

func TestKindOf(t *testing.T) {
	if k := KindOf(errors.New("plain"), FitError); k != FitError {
		t.Errorf("plain error kind %q", k)
	}
	wrapped := &Error{Kind: FitPanic, Site: "fit/X", Err: errors.New("boom")}
	if k := KindOf(wrapped, FitError); k != FitPanic {
		t.Errorf("typed error kind %q", k)
	}
	if !errors.Is(wrapped, wrapped.Err) {
		t.Error("Unwrap broken")
	}
}

// testMeter builds a small execution meter for wrapper tests.
func testMeter() *energy.Meter { return energy.NewMeter(hw.XeonGold6132(), 1) }

// testTrain generates a small deterministic training view.
func testTrain(t *testing.T) tabular.View {
	t.Helper()
	spec, ok := openml.ByName("credit-g")
	if !ok {
		t.Fatal("credit-g spec missing")
	}
	return openml.Generate(spec, openml.SmallScale(), 1).All()
}

func TestWrapFitError(t *testing.T) {
	inner := automl.NewTabPFN()
	meter := testMeter()
	train := testTrain(t)

	sys := Wrap(inner, Plan{FitError: true, WasteFrac: 0.5})
	_, err := sys.Fit(train, automl.Options{Budget: 10 * time.Second, Meter: meter})
	if KindOf(err, None) != FitError {
		t.Fatalf("err %v, want injected fit-error", err)
	}
	if meter.Tracker().KWh(energy.Execution) <= 0 {
		t.Error("crash burned no energy — wasted compute must be charged")
	}
	if got := meter.Clock().Now(); got != 5*time.Second {
		t.Errorf("waste advanced clock by %s, want 5s", got)
	}
}

func TestWrapFitPanic(t *testing.T) {
	train := testTrain(t)
	sys := Wrap(automl.NewTabPFN(), Plan{FitPanic: true, WasteFrac: 0.1})
	defer func() {
		r := recover()
		fe, ok := r.(*Error)
		if !ok || fe.Kind != FitPanic {
			t.Errorf("panic value %v, want typed fit-panic", r)
		}
	}()
	sys.Fit(train, automl.Options{Budget: time.Second, Meter: testMeter()})
	t.Error("injected panic did not fire")
}

func TestWrapPredictErrorCorruptsPredictor(t *testing.T) {
	train := testTrain(t)
	sys := Wrap(automl.NewTabPFN(), Plan{PredictError: true})
	res, err := sys.Fit(train, automl.Options{Budget: time.Second, Meter: testMeter()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		fe, ok := r.(*Error)
		if !ok || fe.Kind != PredictError {
			t.Errorf("panic value %v, want typed predict-error", r)
		}
	}()
	res.Predictor.PredictProba(train)
	t.Error("corrupt predictor did not fire")
}

func TestWrapEmptyPlanIsTransparent(t *testing.T) {
	inner := automl.NewTabPFN()
	if Wrap(inner, Plan{}) != automl.System(inner) {
		t.Error("empty plan should return the inner system unchanged")
	}
	wrapped := Wrap(inner, Plan{FitError: true})
	if wrapped.Name() != inner.Name() || wrapped.MinBudget() != inner.MinBudget() {
		t.Error("wrapper must preserve identity")
	}
}

func TestHangPlanDeterministicAndIndependent(t *testing.T) {
	always := New(Config{HangRate: 1, Seed: 3})
	for seed := uint64(0); seed < 20; seed++ {
		p := always.CellPlan("S", "d", time.Second, seed, 0)
		if !p.Hang {
			t.Fatalf("seed %d: hang rate 1 produced %+v", seed, p)
		}
		if p.WasteFrac < 0.1 || p.WasteFrac > 0.6 {
			t.Fatalf("seed %d: hang waste %v outside [0.1, 0.6]", seed, p.WasteFrac)
		}
	}
	// Enabling hangs must not perturb the crash/error/dropout decisions
	// an existing fault seed produces on the sites hangs skip.
	plain := New(Config{Rate: 0.5, Seed: 42})
	mixed := New(Config{Rate: 0.5, HangRate: 0.25, Seed: 42})
	for seed := uint64(0); seed < 60; seed++ {
		pm := mixed.CellPlan("CAML", "adult", 10*time.Second, seed, 0)
		if pm.Hang {
			continue
		}
		if pp := plain.CellPlan("CAML", "adult", 10*time.Second, seed, 0); pm != pp {
			t.Fatalf("seed %d: hang stream leaked into fault decisions: %+v vs %+v", seed, pm, pp)
		}
	}
}

// TestWrapHangParksUntilAbandoned pins the hang fault's contract: it
// burns WasteFrac of the budget, stops advancing the virtual clock, and
// unwinds with a typed stall error once the watchdog closes the abandon
// channel — so an abandoned hang never leaks its goroutine.
func TestWrapHangParksUntilAbandoned(t *testing.T) {
	train := testTrain(t)
	meter := testMeter()
	sys := Wrap(automl.NewTabPFN(), Plan{Hang: true, WasteFrac: 0.25})

	abandon := make(chan struct{})
	type outcome struct {
		res *automl.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := sys.Fit(train, automl.Options{Budget: 8 * time.Second, Meter: meter, Abandon: abandon})
		done <- outcome{res, err}
	}()

	select {
	case out := <-done:
		t.Fatalf("hang returned before abandonment: %+v, %v", out.res, out.err)
	default:
	}
	close(abandon)
	out := <-done
	if out.res != nil || KindOf(out.err, None) != Stall {
		t.Fatalf("abandoned hang returned (%+v, %v), want typed stall", out.res, out.err)
	}
	if got := meter.Clock().Now(); got != 2*time.Second {
		t.Errorf("hang advanced clock by %s, want the 2s waste and nothing after", got)
	}
	if meter.Tracker().KWh(energy.Execution) <= 0 {
		t.Error("hang burned no energy — the budget consumed before the stall must stay charged")
	}
}
