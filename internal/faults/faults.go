// Package faults is the harness's deterministic fault-injection
// subsystem.
//
// The paper's evaluation depends on AutoML systems that crash, overrun
// budgets and degrade under pressure; AMLB-style benchmark harnesses
// survive framework crashes by falling back to a constant predictor, and
// the green-AutoML framing counts the energy of failed and retried runs
// as real cost. This package injects those failures on purpose so the
// harness's resilience machinery (panic recovery, retries, fallback
// predictors, the run journal) is exercised deterministically: every
// injection decision is a pure function of the injector seed and a
// stable site key, so replays and resumed runs inject byte-identically
// regardless of cell execution order.
//
// Fault sites:
//
//   - trainer panic or transient error partway through System.Fit, after
//     a site-keyed fraction of the budget has been burned (crashed
//     trainers still consumed energy);
//   - corrupt-model predictor faults that panic during prediction;
//   - hang faults: Fit burns part of the budget, then parks forever
//     without advancing the virtual clock — the stall signature the
//     scheduler's liveness watchdog must detect and reclaim;
//   - meter dropout: the energy sampler dies mid-run, losing readings
//     while virtual time keeps advancing (CodeCarbon's sampler is a
//     separate process in the paper's setup);
//   - simulated OOM when a cell's working-set estimate exceeds a
//     configurable machine memory model (deterministic, not random);
//   - transient dataset-generation errors.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"time"

	"repro/internal/automl"
	"repro/internal/energy"
	"repro/internal/ml"
	"repro/internal/tabular"
)

// Kind classifies a harness failure. It is the taxonomy recorded on
// bench.Record: empty means a clean run.
type Kind string

const (
	// None is a clean run.
	None Kind = ""
	// FitError is a system returning an error from Fit.
	FitError Kind = "fit-error"
	// FitPanic is a system panicking during Fit, recovered by the
	// harness.
	FitPanic Kind = "fit-panic"
	// OOM is a simulated out-of-memory kill: the cell's working-set
	// estimate exceeded the machine memory model.
	OOM Kind = "oom"
	// PredictError is a failure (error or panic) during prediction.
	PredictError Kind = "predict-error"
	// MeterDropout means energy readings were lost mid-run; the score is
	// valid but the energy measurements are partial.
	MeterDropout Kind = "meter-dropout"
	// Stall is a cell whose virtual clock stopped advancing: the trainer
	// wedged without failing, the scheduler's liveness watchdog abandoned
	// it, and the budget it burned before stalling stays charged.
	Stall Kind = "stall"
	// DatasetError is a dataset-generation failure.
	DatasetError Kind = "dataset-error"
	// ShardFailure marks a cell whose owning shard subprocess died and
	// exhausted its restart budget: the cell never executed, but the
	// sweep degrades to reporting it here instead of aborting.
	ShardFailure Kind = "shard-failure"
	// FallbackUsed labels records whose score came from the
	// majority-class fallback predictor after retries were exhausted
	// (AMLB semantics); the record's Failure field keeps the root cause.
	FallbackUsed Kind = "fallback-used"
)

// Error is a typed fault: an injected failure, or a recovered panic
// converted into an error by the harness.
type Error struct {
	// Kind classifies the fault.
	Kind Kind
	// Site names where it fired (e.g. "fit/CAML").
	Site string
	// Err is the underlying cause, if any.
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("faults: %s at %s: %v", e.Kind, e.Site, e.Err)
	}
	return fmt.Sprintf("faults: %s at %s", e.Kind, e.Site)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// KindOf extracts the failure kind from err, or returns fallback for
// plain errors.
func KindOf(err error, fallback Kind) Kind {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.Kind
	}
	return fallback
}

// Config enables fault injection. The zero value disables everything.
type Config struct {
	// Rate is the per-attempt probability in [0, 1] that a random fault
	// (crash, transient error, corrupt model, meter dropout) fires.
	Rate float64
	// HangRate is the per-attempt probability in [0, 1] that a Fit hangs
	// instead: it burns a site-keyed fraction of the budget and then stops
	// advancing the virtual clock forever, parking until the harness's
	// stall watchdog abandons the attempt. Hangs exist to exercise the
	// watchdog deterministically; enabling them without a watchdog wedges
	// the run exactly like a real hung trainer would.
	HangRate float64
	// Seed seeds the injection stream. Decisions depend only on (Seed,
	// site key), never on execution order.
	Seed uint64
	// MemoryBytes models the machine's usable RAM. When positive, cells
	// whose working-set estimate exceeds it fail with a simulated OOM.
	// Zero disables the memory model.
	MemoryBytes int64
}

// Enabled reports whether any fault source is active.
func (c Config) Enabled() bool { return c.Rate > 0 || c.HangRate > 0 || c.MemoryBytes > 0 }

// Injector draws deterministic fault decisions. A nil *Injector is valid
// and injects nothing, so callers need no branching when injection is
// off.
type Injector struct {
	cfg Config
}

// New returns an injector for the config, or nil when injection is
// disabled.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.Rate < 0 {
		cfg.Rate = 0
	}
	if cfg.Rate > 1 {
		cfg.Rate = 1
	}
	if cfg.HangRate < 0 {
		cfg.HangRate = 0
	}
	if cfg.HangRate > 1 {
		cfg.HangRate = 1
	}
	return &Injector{cfg: cfg}
}

// roll returns a uniform draw in [0, 1) keyed purely by the injector
// seed and the site string.
func (in *Injector) roll(site string) float64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	return rand.New(rand.NewPCG(in.cfg.Seed^0xfa0175, h.Sum64())).Float64()
}

// Plan is the set of faults injected into one cell attempt.
type Plan struct {
	// FitPanic makes the system panic partway through Fit.
	FitPanic bool
	// FitError makes Fit return a transient typed error partway through.
	FitError bool
	// PredictError corrupts the returned predictor so it panics on use.
	PredictError bool
	// Hang makes Fit burn WasteFrac of the budget and then park forever
	// without advancing the virtual clock — the stall signature the
	// liveness watchdog detects. The parked Fit unblocks only when the
	// harness closes the attempt's abandon channel.
	Hang bool
	// DropoutFrac > 0 arranges for the execution meter to lose energy
	// readings after this fraction of the budget.
	DropoutFrac float64
	// WasteFrac is the fraction of the budget a crashing or hanging Fit
	// burns before it fails — energy that is spent even though no result
	// survives.
	WasteFrac float64
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return !p.FitPanic && !p.FitError && !p.PredictError && !p.Hang && p.DropoutFrac <= 0
}

// CellPlan decides the faults for one (system, dataset, budget, seed)
// cell attempt. The decision is order-independent: it depends only on
// the injector seed and the cell identity.
func (in *Injector) CellPlan(system, dataset string, budget time.Duration, seed, attempt uint64) Plan {
	if in == nil || (in.cfg.Rate <= 0 && in.cfg.HangRate <= 0) {
		return Plan{}
	}
	site := fmt.Sprintf("cell/%s/%s/%d/%d/%d", system, dataset, budget, seed, attempt)
	// Hangs draw from their own site key so enabling them never perturbs
	// the crash/error/dropout decisions an existing fault seed produces.
	if in.cfg.HangRate > 0 && in.roll(site+"/hang") < in.cfg.HangRate {
		return Plan{Hang: true, WasteFrac: 0.1 + 0.5*in.roll(site+"/hangwaste")}
	}
	if in.cfg.Rate <= 0 || in.roll(site) >= in.cfg.Rate {
		return Plan{}
	}
	waste := 0.2 + 0.6*in.roll(site+"/waste")
	switch pick := in.roll(site + "/kind"); {
	case pick < 0.30:
		return Plan{FitPanic: true, WasteFrac: waste}
	case pick < 0.60:
		return Plan{FitError: true, WasteFrac: waste}
	case pick < 0.80:
		return Plan{PredictError: true}
	default:
		return Plan{DropoutFrac: waste}
	}
}

// DatasetFault reports a transient dataset-generation error for the
// given attempt, or nil. Retrying with the next attempt index redraws
// the decision, so transient faults clear on retry with high
// probability.
func (in *Injector) DatasetFault(dataset string, seed uint64, attempt int) error {
	if in == nil || in.cfg.Rate <= 0 {
		return nil
	}
	site := fmt.Sprintf("dataset/%s/%d/%d", dataset, seed, attempt)
	if in.roll(site) < in.cfg.Rate {
		return &Error{Kind: DatasetError, Site: site, Err: errors.New("transient generation failure")}
	}
	return nil
}

// WorkingSetBytes estimates a training cell's peak working set: the
// design matrix in float64 times a copy factor covering train/val
// splits, preprocessed views, fold buffers and ensemble members.
func WorkingSetBytes(rows, features int) int64 {
	if rows < 0 {
		rows = 0
	}
	if features < 1 {
		features = 1
	}
	const bytesPerValue = 8
	const copies = 24
	return int64(rows) * int64(features) * bytesPerValue * copies
}

// CheckOOM returns a simulated OOM fault when the cell's working-set
// estimate exceeds the configured memory model. The decision is
// deterministic in the dataset shape — retries cannot clear it.
func (in *Injector) CheckOOM(dataset string, rows, features int) *Error {
	if in == nil || in.cfg.MemoryBytes <= 0 {
		return nil
	}
	if ws := WorkingSetBytes(rows, features); ws > in.cfg.MemoryBytes {
		return &Error{
			Kind: OOM,
			Site: "fit/" + dataset,
			Err:  fmt.Errorf("working set ~%d B exceeds %d B memory model", ws, in.cfg.MemoryBytes),
		}
	}
	return nil
}

// Wrap returns a System that injects the plan's faults around inner.
// With an empty plan it returns inner unchanged.
func Wrap(inner automl.System, plan Plan) automl.System {
	if plan.Empty() {
		return inner
	}
	return &faultySystem{inner: inner, plan: plan}
}

type faultySystem struct {
	inner automl.System
	plan  Plan
}

// Name implements automl.System.
func (f *faultySystem) Name() string { return f.inner.Name() }

// MinBudget implements automl.System.
func (f *faultySystem) MinBudget() time.Duration { return f.inner.MinBudget() }

// Fit implements automl.System, firing the plan's fit-stage faults.
// Crash faults burn WasteFrac of the budget first: a trainer that dies
// mid-run consumed real energy, which the meter must keep.
func (f *faultySystem) Fit(train tabular.View, opts automl.Options) (*automl.Result, error) {
	if f.plan.DropoutFrac > 0 && opts.Meter != nil {
		opts.Meter.DropoutAfter(time.Duration(f.plan.DropoutFrac * float64(opts.Budget)))
	}
	if f.plan.Hang {
		if opts.Meter != nil {
			if waste := time.Duration(f.plan.WasteFrac * float64(opts.Budget)); waste > 0 {
				opts.Meter.Idle(energy.Execution, waste)
			}
		}
		// Park without advancing the virtual clock — the watchdog's stall
		// signature. A nil Abandon channel blocks forever, which is
		// exactly what a hung trainer does to a harness with no watchdog.
		<-opts.Abandon
		return nil, &Error{
			Kind: Stall,
			Site: "fit/" + f.inner.Name(),
			Err:  errors.New("injected hang abandoned by watchdog"),
		}
	}
	if f.plan.FitPanic || f.plan.FitError {
		if opts.Meter != nil {
			if waste := time.Duration(f.plan.WasteFrac * float64(opts.Budget)); waste > 0 {
				opts.Meter.Idle(energy.Execution, waste)
			}
		}
		site := "fit/" + f.inner.Name()
		if f.plan.FitPanic {
			panic(&Error{Kind: FitPanic, Site: site, Err: errors.New("injected trainer crash")})
		}
		return nil, &Error{Kind: FitError, Site: site, Err: errors.New("injected trainer failure")}
	}
	res, err := f.inner.Fit(train, opts)
	if err != nil {
		return nil, err
	}
	if f.plan.PredictError {
		res.Predictor = corruptPredictor{}
	}
	return res, nil
}

// corruptPredictor models a predictor whose serialized model is broken:
// any use panics, which the harness must recover and classify.
type corruptPredictor struct{}

// PredictProba implements ensemble.Predictor by panicking.
func (corruptPredictor) PredictProba(x tabular.View) ([][]float64, ml.Cost) {
	panic(&Error{Kind: PredictError, Site: "predict", Err: errors.New("injected corrupt model")})
}
