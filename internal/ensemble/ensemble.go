// Package ensemble implements the ensembling strategies of the paper's
// systems (Table 1): Caruana greedy ensemble selection (ASKL, AutoGluon),
// bagging and stacking (AutoGluon), and unweighted averaging (TabPFN).
//
// Ensembling is the paper's central energy trade-off: it improves
// generalization but multiplies inference cost with the number of member
// models (Observation O1). The types here therefore propagate per-member
// prediction costs faithfully.
package ensemble

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/tabular"
)

// Predictor is anything that yields class probabilities at a cost.
// *pipeline.Pipeline satisfies it.
type Predictor interface {
	PredictProba(x tabular.View) ([][]float64, ml.Cost)
}

// Weighted combines member predictors with non-negative weights.
type Weighted struct {
	// Members are the base predictors.
	Members []Predictor
	// Weights holds one non-negative weight per member; they need not
	// sum to one (normalization happens at prediction).
	Weights []float64
}

// PredictProba implements Predictor. Members with zero weight are skipped
// entirely — they cost nothing at inference, matching how Caruana
// selection concentrates weight on few models.
func (w *Weighted) PredictProba(x tabular.View) ([][]float64, ml.Cost) {
	var cost ml.Cost
	var out [][]float64
	var totalWeight float64
	for m, member := range w.Members {
		weight := w.Weights[m]
		if weight <= 0 {
			continue
		}
		proba, c := member.PredictProba(x)
		cost.Add(c)
		if out == nil {
			out = make([][]float64, len(proba))
			for i := range out {
				out[i] = make([]float64, len(proba[i]))
			}
		}
		for i, row := range proba {
			for j, p := range row {
				out[i][j] += weight * p
			}
		}
		totalWeight += weight
	}
	if out == nil || totalWeight <= 0 {
		return nil, cost
	}
	for i := range out {
		for j := range out[i] {
			out[i][j] /= totalWeight
		}
	}
	cost.Generic += float64(x.Rows()) * 4
	return out, cost
}

// ActiveMembers reports how many members carry positive weight.
func (w *Weighted) ActiveMembers() int {
	n := 0
	for _, weight := range w.Weights {
		if weight > 0 {
			n++
		}
	}
	return n
}

// CaruanaResult is the outcome of greedy ensemble selection.
type CaruanaResult struct {
	// Weights holds the selection counts per candidate, normalizable to
	// ensemble weights.
	Weights []float64
	// Score is the ensemble's final validation balanced accuracy.
	Score float64
	// Cost is the compute spent on selection — the step that makes
	// ASKL overrun its budget on large validation sets (paper §3.10).
	Cost ml.Cost
}

// CaruanaSelect performs greedy forward ensemble selection with
// replacement (Caruana et al. 2004): starting from the single best model,
// repeatedly add the candidate that maximizes validation balanced accuracy
// of the averaged ensemble. valProbas[m] holds model m's validation
// probability rows.
func CaruanaSelect(valProbas [][][]float64, yVal []int, classes, rounds int) (CaruanaResult, error) {
	numModels := len(valProbas)
	if numModels == 0 {
		return CaruanaResult{}, errors.New("ensemble: no candidates for selection")
	}
	n := len(yVal)
	if n == 0 {
		return CaruanaResult{}, errors.New("ensemble: empty validation set")
	}
	for m, proba := range valProbas {
		if len(proba) != n {
			return CaruanaResult{}, fmt.Errorf("ensemble: candidate %d has %d validation rows, want %d", m, len(proba), n)
		}
	}
	if rounds < 1 {
		rounds = numModels
	}

	var cost ml.Cost
	weights := make([]float64, numModels)
	sum := make([][]float64, n)
	for i := range sum {
		sum[i] = make([]float64, classes)
	}
	selected := 0
	bestScore := -1.0
	labels := make([]int, n)
	trial := make([]float64, classes)

	for round := 0; round < rounds; round++ {
		bestCandidate := -1
		bestCandidateScore := -1.0
		for m := 0; m < numModels; m++ {
			// Score ensemble sum + candidate m.
			for i := 0; i < n; i++ {
				row := valProbas[m][i]
				for j := 0; j < classes && j < len(row); j++ {
					trial[j] = sum[i][j] + row[j]
				}
				best := 0
				for j := 1; j < classes; j++ {
					if trial[j] > trial[best] {
						best = j
					}
				}
				labels[i] = best
			}
			score := metrics.BalancedAccuracy(yVal, labels, classes)
			// Ties prefer the candidate selected least so far: greedy
			// selection with replacement otherwise degenerates into a
			// single-member ensemble on small validation sets, which
			// neither Caruana's original nor the AutoML systems built
			// on it exhibit.
			if score > bestCandidateScore ||
				(score == bestCandidateScore && bestCandidate >= 0 && weights[m] < weights[bestCandidate]) {
				bestCandidateScore = score
				bestCandidate = m
			}
		}
		cost.Generic += float64(numModels) * float64(n) * float64(classes) * 3
		if bestCandidate < 0 {
			break
		}
		// Selection runs for the full round count (auto-sklearn uses a
		// fixed ensemble size), but a round that would *strictly lower*
		// the score stops early.
		if selected > 0 && bestCandidateScore < bestScore {
			break
		}
		weights[bestCandidate]++
		for i := 0; i < n; i++ {
			row := valProbas[bestCandidate][i]
			for j := 0; j < classes && j < len(row); j++ {
				sum[i][j] += row[j]
			}
		}
		bestScore = bestCandidateScore
		selected++
	}
	return CaruanaResult{Weights: weights, Score: bestScore, Cost: cost}, nil
}

// Bagged is a k-fold bagged model: k clones of one pipeline, each trained
// on k-1 folds. Prediction averages the fold models, which multiplies
// inference cost by k — unless the bag is refit into a single model
// (AutoGluon's inference-optimized preset, paper §3.4).
type Bagged struct {
	// Folds holds the fitted per-fold pipelines.
	Folds []*pipeline.Pipeline
	// OOFProba holds the out-of-fold probability rows aligned with
	// OOFLabels (stacking features and honest validation data).
	OOFProba [][]float64
	// OOFRows holds the raw feature rows matching OOFProba, needed to
	// assemble stacked training inputs.
	OOFRows [][]float64
	// OOFLabels holds the matching true labels.
	OOFLabels []int
	// OOFIndex maps each OOF position to its source-dataset row index,
	// letting callers align OOF predictions across bags with different
	// fold seeds.
	OOFIndex []int
	// refit, when set, replaces fold averaging at prediction time.
	refit *pipeline.Pipeline
}

// FitBagged trains k fold clones of the prototype pipeline and collects
// out-of-fold predictions. The fold assignment is derived from foldSeed so
// that several bags over the same dataset share folds (their OOF rows then
// align, which stacking requires). It returns the per-fold training costs
// separately so the caller can schedule them in parallel — bagging is the
// embarrassingly parallel workload of paper §3.3.
func FitBagged(proto func() *pipeline.Pipeline, ds tabular.View, k int, foldSeed uint64, rng *rand.Rand) (*Bagged, []ml.Cost, error) {
	if k < 2 {
		k = 2
	}
	foldRng := rand.New(rand.NewPCG(foldSeed, 0xf01d))
	folds := ds.KFoldIndices(k, foldRng)
	bag := &Bagged{}
	costs := make([]ml.Cost, 0, k)
	for f := range folds {
		var trainIdx []int
		for g := range folds {
			if g != f {
				trainIdx = append(trainIdx, folds[g]...)
			}
		}
		train := ds.Select(trainIdx)
		val := ds.Select(folds[f])
		p := proto()
		cost, err := p.Fit(train, rng)
		if err != nil {
			// The failed fold still spent compute up to the failure;
			// hand its partial cost back so the caller meters it.
			costs = append(costs, cost)
			return nil, costs, fmt.Errorf("ensemble: bagged fold %d: %w", f, err)
		}
		proba, predCost := p.PredictProba(val)
		cost.Add(predCost)
		costs = append(costs, cost)
		bag.Folds = append(bag.Folds, p)
		bag.OOFProba = append(bag.OOFProba, proba...)
		bag.OOFRows = append(bag.OOFRows, val.MaterializeRows()...)
		bag.OOFLabels = append(bag.OOFLabels, val.LabelsInto(nil)...)
		bag.OOFIndex = append(bag.OOFIndex, folds[f]...)
	}
	return bag, costs, nil
}

// Refit collapses the bag into a single model trained on the full training
// data (AutoGluon's "refit" / inference-optimized setting). It returns the
// refit training cost.
func (b *Bagged) Refit(proto func() *pipeline.Pipeline, ds tabular.View, rng *rand.Rand) (ml.Cost, error) {
	p := proto()
	cost, err := p.Fit(ds, rng)
	if err != nil {
		return cost, fmt.Errorf("ensemble: refit: %w", err)
	}
	b.refit = p
	return cost, nil
}

// Refitted reports whether the bag has been collapsed.
func (b *Bagged) Refitted() bool { return b.refit != nil }

// PredictProba implements Predictor: averaged fold models, or the single
// refit model when present.
func (b *Bagged) PredictProba(x tabular.View) ([][]float64, ml.Cost) {
	if b.refit != nil {
		return b.refit.PredictProba(x)
	}
	if len(b.Folds) == 0 {
		return nil, ml.Cost{}
	}
	var cost ml.Cost
	var out [][]float64
	for _, fold := range b.Folds {
		proba, c := fold.PredictProba(x)
		cost.Add(c)
		if out == nil {
			out = make([][]float64, len(proba))
			for i := range out {
				out[i] = make([]float64, len(proba[i]))
			}
		}
		for i, row := range proba {
			for j, p := range row {
				out[i][j] += p
			}
		}
	}
	inv := 1 / float64(len(b.Folds))
	for i := range out {
		for j := range out[i] {
			out[i][j] *= inv
		}
	}
	return out, cost
}

// StackFeatures builds layer-(l+1) inputs by concatenating the original
// features with each bag's probability rows (AutoGluon-style stacking,
// where "all models have access to all information from the other models
// of the lower layers").
func StackFeatures(x [][]float64, probas [][][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		stacked := append([]float64(nil), row...)
		for _, proba := range probas {
			stacked = append(stacked, proba[i]...)
		}
		out[i] = stacked
	}
	return out
}
