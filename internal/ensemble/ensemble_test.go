package ensemble

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/tabular"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0xe5)) }

func blob(n int, rng *rand.Rand) *tabular.Dataset {
	ds := &tabular.Dataset{Name: "blob", Classes: 2}
	for i := 0; i < n; i++ {
		c := i % 2
		ds.X = append(ds.X, []float64{3*float64(c) + rng.NormFloat64(), rng.NormFloat64()})
		ds.Y = append(ds.Y, c)
	}
	return ds
}

// constPredictor always returns fixed probability rows at a fixed cost.
type constPredictor struct {
	proba [][]float64
	cost  float64
}

func (c *constPredictor) PredictProba(x tabular.View) ([][]float64, ml.Cost) {
	out := make([][]float64, x.Rows())
	for i := range out {
		out[i] = c.proba[i%len(c.proba)]
	}
	return out, ml.Cost{Generic: c.cost}
}

func TestWeightedSkipsZeroWeightMembers(t *testing.T) {
	expensive := &constPredictor{proba: [][]float64{{1, 0}}, cost: 1e9}
	cheap := &constPredictor{proba: [][]float64{{0, 1}}, cost: 1}
	w := &Weighted{Members: []Predictor{expensive, cheap}, Weights: []float64{0, 1}}
	proba, cost := w.PredictProba(tabular.FromRows([][]float64{{0}}))
	if cost.Generic >= 1e9 {
		t.Error("zero-weight member was evaluated at inference — it must cost nothing")
	}
	if proba[0][1] != 1 {
		t.Errorf("proba %v, want the cheap member's output", proba[0])
	}
	if w.ActiveMembers() != 1 {
		t.Errorf("active members %d, want 1", w.ActiveMembers())
	}
}

func TestWeightedAveraging(t *testing.T) {
	a := &constPredictor{proba: [][]float64{{1, 0}}}
	b := &constPredictor{proba: [][]float64{{0, 1}}}
	w := &Weighted{Members: []Predictor{a, b}, Weights: []float64{3, 1}}
	proba, _ := w.PredictProba(tabular.FromRows([][]float64{{0}}))
	if math.Abs(proba[0][0]-0.75) > 1e-9 || math.Abs(proba[0][1]-0.25) > 1e-9 {
		t.Errorf("weighted average %v, want [0.75 0.25]", proba[0])
	}
	// All-zero weights yield nil output.
	empty := &Weighted{Members: []Predictor{a}, Weights: []float64{0}}
	if out, _ := empty.PredictProba(tabular.FromRows([][]float64{{0}})); out != nil {
		t.Error("zero-weight ensemble produced output")
	}
}

func TestCaruanaPicksPerfectModel(t *testing.T) {
	yVal := []int{0, 1, 0, 1}
	perfect := [][]float64{{0.9, 0.1}, {0.1, 0.9}, {0.8, 0.2}, {0.2, 0.8}}
	inverted := [][]float64{{0.1, 0.9}, {0.9, 0.1}, {0.2, 0.8}, {0.8, 0.2}}
	res, err := CaruanaSelect([][][]float64{inverted, perfect}, yVal, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[1] == 0 {
		t.Errorf("perfect model unselected: weights %v", res.Weights)
	}
	if res.Score != 1 {
		t.Errorf("ensemble score %v, want 1", res.Score)
	}
	if res.Cost.Total() <= 0 {
		t.Error("selection reported no cost")
	}
}

func TestCaruanaEnsembleBeatsAverageMember(t *testing.T) {
	rng := testRNG(1)
	yVal := make([]int, 60)
	for i := range yVal {
		yVal[i] = i % 2
	}
	// Three noisy-but-informative members with independent noise: the
	// selected ensemble must score at least as well as the best member.
	var members [][][]float64
	bestSingle := 0.0
	for m := 0; m < 3; m++ {
		proba := make([][]float64, len(yVal))
		labels := make([]int, len(yVal))
		for i := range proba {
			p := 0.65
			if rng.Float64() > 0.8 {
				p = 0.35 // noise
			}
			if yVal[i] == 1 {
				proba[i] = []float64{1 - p, p}
			} else {
				proba[i] = []float64{p, 1 - p}
			}
			labels[i] = metrics.Argmax(proba[i])
		}
		if s := metrics.BalancedAccuracy(yVal, labels, 2); s > bestSingle {
			bestSingle = s
		}
		members = append(members, proba)
	}
	res, err := CaruanaSelect(members, yVal, 2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score < bestSingle {
		t.Errorf("ensemble score %v below best member %v", res.Score, bestSingle)
	}
}

func TestCaruanaSpreadsWeightOverMultipleMembers(t *testing.T) {
	// Several equally strong members: the tie-breaking rule must build a
	// multi-member ensemble (auto-sklearn ensembles dozens of models —
	// the degenerate single-member outcome would break Observation O1).
	yVal := make([]int, 40)
	for i := range yVal {
		yVal[i] = i % 2
	}
	proba := make([][]float64, len(yVal))
	for i := range proba {
		if yVal[i] == 1 {
			proba[i] = []float64{0.3, 0.7}
		} else {
			proba[i] = []float64{0.7, 0.3}
		}
	}
	members := [][][]float64{proba, proba, proba, proba}
	res, err := CaruanaSelect(members, yVal, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for _, w := range res.Weights {
		if w > 0 {
			active++
		}
	}
	if active < 2 {
		t.Errorf("only %d member(s) selected from four equal candidates", active)
	}
}

func TestCaruanaInputValidation(t *testing.T) {
	if _, err := CaruanaSelect(nil, []int{0}, 2, 5); err == nil {
		t.Error("no candidates accepted")
	}
	if _, err := CaruanaSelect([][][]float64{{{1, 0}}}, nil, 2, 5); err == nil {
		t.Error("empty validation set accepted")
	}
	if _, err := CaruanaSelect([][][]float64{{{1, 0}}}, []int{0, 1}, 2, 5); err == nil {
		t.Error("row-count mismatch accepted")
	}
}

func newPipelineProto() func() *pipeline.Pipeline {
	spec := pipeline.SpaceSpec{Models: []string{"tree"}}
	space, err := spec.Space()
	if err != nil {
		panic(err)
	}
	return func() *pipeline.Pipeline {
		p, err := spec.Build(space.Default(), 2)
		if err != nil {
			panic(err)
		}
		return p
	}
}

func TestFitBaggedOOFCoverage(t *testing.T) {
	ds := blob(90, testRNG(2))
	bag, costs, err := FitBagged(newPipelineProto(), ds.View(), 3, 7, testRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(bag.Folds) != 3 || len(costs) != 3 {
		t.Fatalf("%d folds, %d costs", len(bag.Folds), len(costs))
	}
	for i, c := range costs {
		if c.Total() <= 0 {
			t.Errorf("fold %d reported no cost", i)
		}
	}
	// OOF rows cover each training row exactly once.
	if len(bag.OOFProba) != ds.Rows() || len(bag.OOFIndex) != ds.Rows() {
		t.Fatalf("OOF sizes %d/%d, want %d", len(bag.OOFProba), len(bag.OOFIndex), ds.Rows())
	}
	seen := map[int]bool{}
	for pos, idx := range bag.OOFIndex {
		if seen[idx] {
			t.Fatalf("row %d appears twice in OOF", idx)
		}
		seen[idx] = true
		if bag.OOFLabels[pos] != ds.Y[idx] {
			t.Fatalf("OOF label misaligned at %d", pos)
		}
	}
}

func TestFitBaggedSharedFoldSeedAligns(t *testing.T) {
	ds := blob(60, testRNG(4))
	a, _, err := FitBagged(newPipelineProto(), ds.View(), 3, 42, testRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := FitBagged(newPipelineProto(), ds.View(), 3, 42, testRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.OOFIndex {
		if a.OOFIndex[i] != b.OOFIndex[i] {
			t.Fatal("same fold seed produced different OOF order — stacking would misalign")
		}
	}
}

func TestBaggedPredictAndRefit(t *testing.T) {
	ds := blob(90, testRNG(7))
	bag, _, err := FitBagged(newPipelineProto(), ds.View(), 3, 1, testRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	probaBag, costBag := bag.PredictProba(ds.View())
	labels := metrics.ArgmaxRows(probaBag)
	if acc := metrics.Accuracy(ds.Y, labels); acc < 0.9 {
		t.Errorf("bagged accuracy %.3f", acc)
	}
	if bag.Refitted() {
		t.Error("bag marked refit before Refit")
	}
	refitCost, err := bag.Refit(newPipelineProto(), ds.View(), testRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if refitCost.Total() <= 0 {
		t.Error("refit reported no cost")
	}
	if !bag.Refitted() {
		t.Error("bag not marked refit")
	}
	// The refit single model must be cheaper at inference than the
	// 3-fold average — that is AutoGluon's inference-optimized preset
	// (paper §3.4).
	_, costRefit := bag.PredictProba(ds.View())
	if costRefit.Total() >= costBag.Total() {
		t.Errorf("refit inference cost %.0f not below bagged %.0f", costRefit.Total(), costBag.Total())
	}
}

func TestStackFeatures(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}}
	probas := [][][]float64{
		{{0.9, 0.1}, {0.2, 0.8}},
		{{0.5, 0.5}, {0.6, 0.4}},
	}
	stacked := StackFeatures(x, probas)
	if len(stacked) != 2 || len(stacked[0]) != 6 {
		t.Fatalf("stacked shape %dx%d, want 2x6", len(stacked), len(stacked[0]))
	}
	want := []float64{1, 2, 0.9, 0.1, 0.5, 0.5}
	for j, v := range want {
		if stacked[0][j] != v {
			t.Errorf("stacked[0][%d] = %v, want %v", j, stacked[0][j], v)
		}
	}
	// The original rows are not mutated.
	if len(x[0]) != 2 {
		t.Error("StackFeatures mutated its input")
	}
}

// costlyFailingModel spends compute and then fails — the shape of a fit
// that dies mid-training after burning real energy.
type costlyFailingModel struct{}

func (costlyFailingModel) Fit(tabular.View, *rand.Rand) (ml.Cost, error) {
	return ml.Cost{Generic: 42}, errors.New("fit boom")
}
func (costlyFailingModel) PredictProba(tabular.View) ([][]float64, ml.Cost) { return nil, ml.Cost{} }
func (costlyFailingModel) Clone() ml.Classifier                             { return costlyFailingModel{} }
func (costlyFailingModel) Name() string                                     { return "costly_failing" }
func (costlyFailingModel) ParallelFrac() float64                            { return 0 }

func TestFitBaggedReturnsPartialCostOnFoldFailure(t *testing.T) {
	ds := blob(30, testRNG(11))
	proto := func() *pipeline.Pipeline {
		return &pipeline.Pipeline{Model: costlyFailingModel{}}
	}
	bag, costs, err := FitBagged(proto, ds.View(), 3, 7, testRNG(12))
	if err == nil {
		t.Fatal("failing fold did not surface an error")
	}
	if bag != nil {
		t.Error("failed bagging returned a bag")
	}
	if len(costs) != 1 {
		t.Fatalf("got %d fold costs, want the failed fold's partial cost", len(costs))
	}
	if costs[0].Generic != 42 {
		t.Errorf("partial cost %v, want the compute the failed fit spent (42)", costs[0].Generic)
	}
}
