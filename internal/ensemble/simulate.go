package ensemble

import (
	"errors"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/ml"
)

// Ensemble simulation over cached predictions (TabRepo, PAPERS.md):
// once every member's per-row probabilities are persisted in the
// evaluation repository, the whole ensembling pipeline — selection,
// weighting, blending, scoring — runs without refitting or even
// re-predicting anything. The only compute is loading slabs and
// arithmetic over them, which SimulateSelection accounts for in its
// returned Cost so callers can charge the (tiny) energy honestly
// rather than pretending simulation is free.

// SimResult is the outcome of one simulated ensemble construction.
type SimResult struct {
	// Weights holds Caruana selection counts per member, over the
	// selection half of the rows.
	Weights []float64
	// SelectionScore is the ensemble's balanced accuracy on the rows the
	// selection saw (the optimistic, in-sample number).
	SelectionScore float64
	// HoldoutScore is the ensemble's balanced accuracy on the held-back
	// rows — the honest estimate of what the ensemble would have scored.
	HoldoutScore float64
	// BestSingle is the best individual member's balanced accuracy on
	// the same holdout rows, the baseline the ensemble must beat.
	BestSingle float64
	// ActiveMembers counts members with positive weight.
	ActiveMembers int
	// Cost is the total simulation compute: slab lookup (reads), the
	// Caruana selection loop, and blend + scoring flops. All Generic —
	// simulation touches no trees and no matrices.
	Cost ml.Cost
}

// SimulateSelection runs greedy ensemble selection over cached member
// probabilities. probas[m] holds member m's probability rows for the
// cell's test set, labels the true labels. Rows with even index form
// the selection half, odd rows the holdout half — a deterministic
// interleave, so every simulation of the same cell partitions
// identically and both halves see the dataset's row-order distribution.
func SimulateSelection(probas [][][]float64, labels []int, classes, rounds int) (SimResult, error) {
	if len(probas) < 2 {
		return SimResult{}, errors.New("ensemble: simulation needs at least two members")
	}
	n := len(labels)
	if n < 4 {
		return SimResult{}, fmt.Errorf("ensemble: %d rows cannot form selection and holdout halves", n)
	}
	for m, proba := range probas {
		if len(proba) != n {
			return SimResult{}, fmt.Errorf("ensemble: member %d has %d rows, want %d", m, len(proba), n)
		}
	}

	var cost ml.Cost
	// Lookup: every member's full slab is read once from the store.
	cost.Generic += float64(len(probas)) * float64(n) * float64(classes)

	selIdx := make([]int, 0, (n+1)/2)
	holdIdx := make([]int, 0, n/2)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			selIdx = append(selIdx, i)
		} else {
			holdIdx = append(holdIdx, i)
		}
	}
	gather := func(idx []int) ([][][]float64, []int) {
		sub := make([][][]float64, len(probas))
		for m := range probas {
			rows := make([][]float64, len(idx))
			for k, i := range idx {
				rows[k] = probas[m][i]
			}
			sub[m] = rows
		}
		y := make([]int, len(idx))
		for k, i := range idx {
			y[k] = labels[i]
		}
		return sub, y
	}
	selProbas, selY := gather(selIdx)
	holdProbas, holdY := gather(holdIdx)

	sel, err := CaruanaSelect(selProbas, selY, classes, rounds)
	if err != nil {
		return SimResult{}, err
	}
	cost.Add(sel.Cost)

	// Blend the holdout rows under the selected weights and score.
	blend := make([][]float64, len(holdIdx))
	var totalWeight float64
	for _, w := range sel.Weights {
		totalWeight += w
	}
	active := 0
	for k := range blend {
		blend[k] = make([]float64, classes)
	}
	for m, w := range sel.Weights {
		if w <= 0 {
			continue
		}
		active++
		for k, row := range holdProbas[m] {
			for j := 0; j < classes && j < len(row); j++ {
				blend[k][j] += w * row[j]
			}
		}
	}
	if totalWeight <= 0 {
		return SimResult{}, errors.New("ensemble: selection produced no weights")
	}
	cost.Generic += float64(active)*float64(len(holdIdx))*float64(classes)*2 +
		float64(len(holdIdx))*float64(classes)
	holdScore := metrics.BalancedAccuracy(holdY, metrics.ArgmaxRows(blend), classes)

	// Best single member on the same holdout rows.
	best := -1.0
	for m := range holdProbas {
		s := metrics.BalancedAccuracy(holdY, metrics.ArgmaxRows(holdProbas[m]), classes)
		if s > best {
			best = s
		}
	}
	cost.Generic += float64(len(probas)) * float64(len(holdIdx)) * float64(classes)

	return SimResult{
		Weights:        sel.Weights,
		SelectionScore: sel.Score,
		HoldoutScore:   holdScore,
		BestSingle:     best,
		ActiveMembers:  active,
		Cost:           cost,
	}, nil
}
