package ensemble

import (
	"math/rand/v2"
	"testing"
)

// simMembers builds synthetic cached predictions: member 0 is good on
// class 0, member 1 on class 1, member 2 is noise. Labels alternate in
// blocks so both halves of the deterministic interleave see all classes.
func simMembers(n int) (probas [][][]float64, labels []int) {
	rng := rand.New(rand.NewPCG(1, 2))
	labels = make([]int, n)
	for i := range labels {
		labels[i] = (i / 2) % 2
	}
	mk := func(acc0, acc1 float64) [][]float64 {
		rows := make([][]float64, n)
		for i := range rows {
			acc := acc0
			if labels[i] == 1 {
				acc = acc1
			}
			p := 0.5 + (acc-0.5)*(0.6+0.4*rng.Float64())
			if labels[i] == 0 {
				rows[i] = []float64{p, 1 - p}
			} else {
				rows[i] = []float64{1 - p, p}
			}
		}
		return rows
	}
	return [][][]float64{mk(0.95, 0.55), mk(0.55, 0.95), mk(0.5, 0.5)}, labels
}

func TestSimulateSelection(t *testing.T) {
	probas, labels := simMembers(200)
	res, err := SimulateSelection(probas, labels, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveMembers < 1 || res.ActiveMembers > 3 {
		t.Fatalf("active members %d", res.ActiveMembers)
	}
	if res.HoldoutScore <= 0.5 {
		t.Fatalf("holdout score %v not above chance", res.HoldoutScore)
	}
	// The complementary members should ensemble above the best single.
	if res.HoldoutScore < res.BestSingle-1e-9 {
		t.Fatalf("ensemble %v worse than best single %v", res.HoldoutScore, res.BestSingle)
	}
	if res.Cost.Total() <= 0 || res.Cost.Tree != 0 || res.Cost.Matrix != 0 {
		t.Fatalf("simulation cost should be positive and purely generic: %+v", res.Cost)
	}
}

func TestSimulateSelectionDeterministic(t *testing.T) {
	probas, labels := simMembers(120)
	a, err := SimulateSelection(probas, labels, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateSelection(probas, labels, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.HoldoutScore != b.HoldoutScore || a.SelectionScore != b.SelectionScore || a.Cost != b.Cost {
		t.Fatalf("non-deterministic simulation: %+v vs %+v", a, b)
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatalf("weights differ at %d", i)
		}
	}
}

func TestSimulateSelectionValidation(t *testing.T) {
	probas, labels := simMembers(40)
	if _, err := SimulateSelection(probas[:1], labels, 2, 4); err == nil {
		t.Fatal("single member accepted")
	}
	if _, err := SimulateSelection(probas, labels[:2], 2, 4); err == nil {
		t.Fatal("row mismatch accepted")
	}
	short := [][][]float64{probas[0][:3], probas[1][:3]}
	if _, err := SimulateSelection(short, labels[:3], 2, 4); err == nil {
		t.Fatal("too few rows accepted")
	}
}
