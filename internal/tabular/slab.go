package tabular

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Slab I/O: the evaluation repository (internal/repo) persists every
// grid cell's prediction probabilities as one contiguous little-endian
// IEEE-754 block, so a cache hit is a single slab copy rather than a
// row-by-row decode. The codec lives here, next to the columnar Frame
// whose layout it mirrors: values are stored exactly as math.Float64bits
// renders them, which makes the round trip bit-exact — NaN payloads and
// signed zeros included — and therefore safe for byte-identity
// guarantees layered on top.

// Float64SlabSize returns the encoded byte length of an n-value slab.
func Float64SlabSize(n int) int { return 8 * n }

// AppendFloat64Slab appends vals to dst as one contiguous little-endian
// float64 block and returns the extended slice.
func AppendFloat64Slab(dst []byte, vals []float64) []byte {
	need := Float64SlabSize(len(vals))
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		dst = append(dst, buf[:]...)
	}
	return dst
}

// DecodeFloat64Slab decodes an n-value contiguous float64 block from the
// front of data into a freshly allocated slice. A short buffer is an
// error, never a partial slab.
func DecodeFloat64Slab(data []byte, n int) ([]float64, error) {
	if n < 0 {
		return nil, fmt.Errorf("tabular: negative slab length %d", n)
	}
	need := Float64SlabSize(n)
	if len(data) < need {
		return nil, fmt.Errorf("tabular: slab needs %d bytes, have %d", need, len(data))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return out, nil
}

// FlattenRows packs row-major probability rows into one contiguous
// slab of rows×classes values (row i, class j at i*classes+j). Rows
// shorter than classes are zero-padded; longer rows are an error —
// silently truncating probabilities would corrupt a stored cell.
func FlattenRows(rows [][]float64, classes int) ([]float64, error) {
	out := make([]float64, len(rows)*classes)
	for i, row := range rows {
		if len(row) > classes {
			return nil, fmt.Errorf("tabular: row %d has %d values, slab holds %d classes", i, len(row), classes)
		}
		copy(out[i*classes:(i+1)*classes], row)
	}
	return out, nil
}

// UnflattenRows is the inverse of FlattenRows: it re-slices a contiguous
// slab into rows×classes probability rows. The backing array is shared
// (one allocation for the rows, zero copies of the values), so callers
// must treat the result as read-only.
func UnflattenRows(slab []float64, rows, classes int) ([][]float64, error) {
	if rows < 0 || classes < 0 || len(slab) != rows*classes {
		return nil, fmt.Errorf("tabular: slab of %d values cannot hold %d rows × %d classes", len(slab), rows, classes)
	}
	out := make([][]float64, rows)
	for i := range out {
		out[i] = slab[i*classes : (i+1)*classes : (i+1)*classes]
	}
	return out, nil
}
