package tabular

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
)

// Frame is the columnar dataset storage shared by every layer of the
// repository: one contiguous []float64 per feature, integer class labels,
// and per-feature kind metadata. Frames are the single owner of feature
// memory; all subsetting (train/test splits, folds, subsamples,
// bootstraps) happens through zero-copy Views that reference a Frame plus
// a row-index list. Code holding a View must treat the Frame's columns as
// immutable — transforms that change cell values materialize a fresh
// Frame instead of mutating in place.
type Frame struct {
	// Name identifies the dataset (e.g. the OpenML task name).
	Name string
	// Cols holds one column per feature; all columns have equal length.
	Cols [][]float64
	// Y holds one class label in [0, Classes) per row. May be nil for
	// unlabeled frames (prediction inputs).
	Y []int
	// Kinds gives the kind of each feature column. A nil Kinds means
	// all-numeric.
	Kinds []FeatureKind
	// Classes is the number of distinct class labels (0 when unlabeled).
	Classes int

	// slab, when non-nil, is the pooled backing array the columns were
	// carved from; Release returns it to the frame pool.
	slab []float64
}

// NewFrame allocates an all-zero frame with the given shape.
func NewFrame(name string, rows, features int) *Frame {
	f := &Frame{Name: name, Cols: make([][]float64, features)}
	backing := make([]float64, rows*features)
	for j := range f.Cols {
		f.Cols[j] = backing[j*rows : (j+1)*rows : (j+1)*rows]
	}
	return f
}

// Rows reports the number of instances.
func (f *Frame) Rows() int {
	if len(f.Cols) == 0 {
		return 0
	}
	return len(f.Cols[0])
}

// Features reports the number of attribute columns.
func (f *Frame) Features() int { return len(f.Cols) }

// All returns the zero-copy identity view over the whole frame.
func (f *Frame) All() View { return View{f: f} }

// Validate checks the frame's invariants through its identity view.
func (f *Frame) Validate() error { return f.All().Validate() }

// ClassCounts tallies labels per class over the whole frame.
func (f *Frame) ClassCounts() []int { return f.All().ClassCounts() }

// Kind reports the kind of feature j (Numeric when Kinds is nil).
func (f *Frame) Kind(j int) FeatureKind { return f.All().Kind(j) }

// NumCategorical counts categorical feature columns.
func (f *Frame) NumCategorical() int { return f.All().NumCategorical() }

// frameSlab pools the contiguous backing arrays of transform-output
// frames so per-call transform outputs stop churning the allocator.
var frameSlabPool = sync.Pool{New: func() any { return []float64(nil) }}

// NewPooledFrame returns a frame whose column memory comes from the
// frame pool. The caller owns it until Release; see DESIGN.md "Data
// layout" for the ownership discipline.
func NewPooledFrame(name string, rows, features int) *Frame {
	need := rows * features
	slab := frameSlabPool.Get().([]float64)
	if cap(slab) < need {
		slab = make([]float64, need)
	}
	slab = slab[:need]
	clear(slab) // recycled slabs carry old values; columns must start zero
	f := &Frame{Name: name, Cols: make([][]float64, features), slab: slab}
	for j := range f.Cols {
		f.Cols[j] = slab[j*rows : (j+1)*rows : (j+1)*rows]
	}
	return f
}

// Release returns a pooled frame's backing memory to the frame pool.
// The frame and every view of it become invalid. Releasing a non-pooled
// frame is a no-op, so callers can release unconditionally under the
// pipeline's ownership rules.
func (f *Frame) Release() {
	if f.slab == nil {
		return
	}
	frameSlabPool.Put(f.slab)
	f.slab = nil
	f.Cols = nil
}

// FromRows builds an unlabeled frame from row-major data — the adapter
// for prediction inputs that arrive as rows (stacked meta-features,
// external callers).
func FromRows(x [][]float64) View {
	if len(x) == 0 {
		return (&Frame{}).All()
	}
	f := NewFrame("", len(x), len(x[0]))
	for i, row := range x {
		for j, v := range row {
			f.Cols[j][i] = v
		}
	}
	return f.All()
}

// View is a zero-copy subset of a Frame: the frame pointer plus a shared
// row-index list. A nil index list is the identity view (all frame rows
// in storage order). Views are values — two words — and are passed by
// value throughout fit/predict paths. The index list is shared, never
// copied; callers must not mutate it after handing out a view.
type View struct {
	f   *Frame
	idx []int
}

// NewView builds a view of f restricted to the given frame-row indices.
// A nil idx yields the identity view.
func NewView(f *Frame, idx []int) View { return View{f: f, idx: idx} }

// Frame returns the backing frame.
func (v View) Frame() *Frame { return v.f }

// Indices returns the frame-row index list (nil for an identity view).
func (v View) Indices() []int { return v.idx }

// Contiguous reports whether the view is the identity view, i.e. column
// slices of the frame can be aliased directly in view order.
func (v View) Contiguous() bool { return v.idx == nil }

// Rows reports the number of instances in the view.
func (v View) Rows() int {
	if v.idx != nil {
		return len(v.idx)
	}
	if v.f == nil {
		return 0
	}
	return v.f.Rows()
}

// Features reports the number of attribute columns.
func (v View) Features() int {
	if v.f == nil {
		return 0
	}
	return v.f.Features()
}

// Classes reports the task's class count.
func (v View) Classes() int {
	if v.f == nil {
		return 0
	}
	return v.f.Classes
}

// Name reports the backing frame's dataset name.
func (v View) Name() string {
	if v.f == nil {
		return ""
	}
	return v.f.Name
}

// Kind reports the kind of feature j, defaulting to Numeric.
func (v View) Kind(j int) FeatureKind {
	if v.f == nil || v.f.Kinds == nil || j < 0 || j >= len(v.f.Kinds) {
		return Numeric
	}
	return v.f.Kinds[j]
}

// Kinds returns the frame's kind slice (nil means all-numeric).
func (v View) Kinds() []FeatureKind {
	if v.f == nil {
		return nil
	}
	return v.f.Kinds
}

// NumCategorical reports how many features are categorical.
func (v View) NumCategorical() int {
	n := 0
	for _, k := range v.Kinds() {
		if k == Categorical {
			n++
		}
	}
	return n
}

// RowIndex maps a view-local row to its frame row.
//
//greenlint:hotpath per-row indirection inside every ml kernel loop
func (v View) RowIndex(i int) int {
	if v.idx != nil {
		return v.idx[i]
	}
	return i
}

// At returns the value of feature j at view row i.
//
//greenlint:hotpath per-cell accessor inside every ml kernel loop
func (v View) At(i, j int) float64 {
	if v.idx != nil {
		return v.f.Cols[j][v.idx[i]]
	}
	return v.f.Cols[j][i]
}

// Label returns the class label of view row i.
//
//greenlint:hotpath per-row label fetch inside fit loops
func (v View) Label(i int) int {
	if v.idx != nil {
		return v.f.Y[v.idx[i]]
	}
	return v.f.Y[i]
}

// BlockSize is the row-block width the unrolled ml kernels consume:
// hot loops process rows eight at a time with an explicit remainder
// tail, matching the 8-wide unrolled accumulation in internal/ml.
const BlockSize = 8

// Blocks invokes fn(lo, hi) over consecutive row ranges of the view, at
// most size rows each, in ascending order; the final block carries the
// remainder. An empty view yields no calls. Block boundaries depend
// only on the row count, so per-block accumulations reduce in the same
// order no matter who executes the blocks.
//
//greenlint:hotpath block driver for the unrolled kernels; must not allocate per block
func (v View) Blocks(size int, fn func(lo, hi int)) {
	if size < 1 {
		size = BlockSize
	}
	n := v.Rows()
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	}
}

// ColRange returns feature j's values for view rows [lo, hi) in view
// order. An identity view aliases the frame column's subslice without
// copying; a subset view gathers the range into dst (grown if needed).
// Callers must not mutate the result. This is the block-granular
// sibling of ColInto, sized for the unrolled kernels' working sets.
//
//greenlint:hotpath per-block column gather inside the unrolled kernels
func (v View) ColRange(j, lo, hi int, dst []float64) []float64 {
	col := v.f.Cols[j]
	if v.idx == nil {
		return col[lo:hi]
	}
	m := hi - lo
	if cap(dst) < m {
		//greenlint:allow hotalloc first-call grow of caller-owned scratch; amortized to zero across blocks
		dst = make([]float64, m)
	}
	dst = dst[:m]
	for i, r := range v.idx[lo:hi] {
		dst[i] = col[r]
	}
	return dst
}

// ColInto returns feature j's values in view order. An identity view
// aliases the frame column without copying; a subset view gathers into
// dst (grown if needed). Callers must not mutate the result.
func (v View) ColInto(j int, dst []float64) []float64 {
	col := v.f.Cols[j]
	if v.idx == nil {
		return col
	}
	if cap(dst) < len(v.idx) {
		dst = make([]float64, len(v.idx))
	}
	dst = dst[:len(v.idx)]
	for i, r := range v.idx {
		dst[i] = col[r]
	}
	return dst
}

// Col copies feature j's values in view order into a fresh slice.
func (v View) Col(j int) []float64 {
	if v.idx == nil {
		return append([]float64(nil), v.f.Cols[j]...)
	}
	return v.ColInto(j, make([]float64, len(v.idx)))
}

// LabelsInto returns the labels in view order. An identity view aliases
// the frame's label slice; a subset view gathers into dst. Callers must
// not mutate the result.
func (v View) LabelsInto(dst []int) []int {
	if v.idx == nil {
		return v.f.Y
	}
	if cap(dst) < len(v.idx) {
		dst = make([]int, len(v.idx))
	}
	dst = dst[:len(v.idx)]
	for i, r := range v.idx {
		dst[i] = v.f.Y[r]
	}
	return dst
}

// Row gathers view row i into dst (grown if needed) and returns it.
func (v View) Row(i int, dst []float64) []float64 {
	d := v.Features()
	if cap(dst) < d {
		dst = make([]float64, d)
	}
	dst = dst[:d]
	r := v.RowIndex(i)
	for j := 0; j < d; j++ {
		dst[j] = v.f.Cols[j][r]
	}
	return dst
}

// Head returns the view of the first n view rows (the view itself when
// n covers it). Used for probe batches.
func (v View) Head(n int) View {
	if n >= v.Rows() {
		return v
	}
	if v.idx != nil {
		return View{f: v.f, idx: v.idx[:n]}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return View{f: v.f, idx: idx}
}

// Select returns the view of the given view-local rows. The returned
// view shares (and for subset views composes) index memory; idx must not
// be mutated afterwards.
func (v View) Select(idx []int) View {
	if v.idx == nil {
		return View{f: v.f, idx: idx}
	}
	out := make([]int, len(idx))
	for i, r := range idx {
		out[i] = v.idx[r]
	}
	return View{f: v.f, idx: out}
}

// Materialize gathers the view into a fresh contiguous frame. Used when
// code needs long-lived storage decoupled from the parent frame.
func (v View) Materialize() *Frame {
	n, d := v.Rows(), v.Features()
	f := NewFrame(v.Name(), n, d)
	f.Classes = v.Classes()
	f.Kinds = v.Kinds()
	for j := 0; j < d; j++ {
		col := v.f.Cols[j]
		dst := f.Cols[j]
		if v.idx == nil {
			copy(dst, col)
		} else {
			for i, r := range v.idx {
				dst[i] = col[r]
			}
		}
	}
	if v.f.Y != nil {
		f.Y = v.LabelsInto(make([]int, n))
	}
	return f
}

// MaterializeRows copies the view into a freshly allocated row-major
// matrix — the adapter back to external [][]float64 consumers.
func (v View) MaterializeRows() [][]float64 {
	n, d := v.Rows(), v.Features()
	out := make([][]float64, n)
	backing := make([]float64, n*d)
	for i := 0; i < n; i++ {
		out[i] = backing[i*d : (i+1)*d : (i+1)*d]
	}
	for j := 0; j < d; j++ {
		col := v.f.Cols[j]
		for i := 0; i < n; i++ {
			out[i][j] = col[v.RowIndex(i)]
		}
	}
	return out
}

// Validate reports a descriptive error if the viewed data is malformed.
func (v View) Validate() error {
	if v.f == nil || v.Rows() == 0 {
		return errors.New("tabular: view has no rows")
	}
	if v.Features() == 0 {
		return errors.New("tabular: view has no features")
	}
	if len(v.f.Y) != v.f.Rows() {
		return fmt.Errorf("tabular: %d rows but %d labels", v.f.Rows(), len(v.f.Y))
	}
	if v.Classes() < 2 {
		return fmt.Errorf("tabular: need >= 2 classes, got %d", v.Classes())
	}
	if v.f.Kinds != nil && len(v.f.Kinds) != v.Features() {
		return fmt.Errorf("tabular: %d features but %d kinds", v.Features(), len(v.f.Kinds))
	}
	for j, col := range v.f.Cols {
		if len(col) != v.f.Rows() {
			return fmt.Errorf("tabular: column %d has %d rows, want %d", j, len(col), v.f.Rows())
		}
	}
	for i := 0; i < v.Rows(); i++ {
		if y := v.Label(i); y < 0 || y >= v.Classes() {
			return fmt.Errorf("tabular: label %d of row %d outside [0,%d)", y, i, v.Classes())
		}
	}
	return nil
}

// ClassCounts returns the number of viewed instances per class.
func (v View) ClassCounts() []int {
	counts := make([]int, v.Classes())
	for i, n := 0, v.Rows(); i < n; i++ {
		if y := v.Label(i); y >= 0 && y < len(counts) {
			counts[y]++
		}
	}
	return counts
}

// StratifiedSplit partitions the view into two parts where the first
// receives approximately `frac` of each class. The split is an index
// permutation — no feature data moves — and consumes the rng exactly as
// the historical matrix-copying split did, so fitted models and grid
// records replay bit-identically.
func (v View) StratifiedSplit(frac float64, rng *rand.Rand) (first, second View) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	byClass := make([][]int, v.Classes())
	for i, n := 0, v.Rows(); i < n; i++ {
		y := v.Label(i)
		byClass[y] = append(byClass[y], i)
	}
	var firstIdx, secondIdx []int
	for _, members := range byClass {
		if len(members) == 0 {
			continue
		}
		perm := rng.Perm(len(members))
		n := int(math.Round(frac * float64(len(members))))
		if len(members) >= 2 {
			if n == 0 {
				n = 1
			}
			if n == len(members) {
				n = len(members) - 1
			}
		}
		for i, p := range perm {
			if i < n {
				firstIdx = append(firstIdx, members[p])
			} else {
				secondIdx = append(secondIdx, members[p])
			}
		}
	}
	shuffleInts(firstIdx, rng)
	shuffleInts(secondIdx, rng)
	return v.Select(firstIdx), v.Select(secondIdx)
}

// TrainTestSplit applies the paper's 66/34 split (§3.1).
func (v View) TrainTestSplit(rng *rand.Rand) (train, test View) {
	return v.StratifiedSplit(0.66, rng)
}

// Subsample returns a stratified sample of up to n rows. If n >= Rows
// the view itself is returned.
func (v View) Subsample(n int, rng *rand.Rand) View {
	if n >= v.Rows() {
		return v
	}
	if n < v.Classes() {
		n = v.Classes()
	}
	frac := float64(n) / float64(v.Rows())
	sample, _ := v.StratifiedSplit(frac, rng)
	return sample
}

// SubsamplePerClass returns a stratified sample with up to perClass rows
// of each class, preserving at least one row per present class.
func (v View) SubsamplePerClass(perClass int, rng *rand.Rand) View {
	if perClass < 1 {
		perClass = 1
	}
	byClass := make([][]int, v.Classes())
	for i, n := 0, v.Rows(); i < n; i++ {
		y := v.Label(i)
		byClass[y] = append(byClass[y], i)
	}
	var idx []int
	for _, members := range byClass {
		if len(members) == 0 {
			continue
		}
		perm := rng.Perm(len(members))
		n := perClass
		if n > len(members) {
			n = len(members)
		}
		for _, p := range perm[:n] {
			idx = append(idx, members[p])
		}
	}
	shuffleInts(idx, rng)
	return v.Select(idx)
}

// KFoldIndices returns k stratified folds as view-local row-index
// slices. k is clamped to [2, Rows].
func (v View) KFoldIndices(k int, rng *rand.Rand) [][]int {
	if k < 2 {
		k = 2
	}
	if k > v.Rows() {
		k = v.Rows()
	}
	folds := make([][]int, k)
	byClass := make([][]int, v.Classes())
	for i, n := 0, v.Rows(); i < n; i++ {
		y := v.Label(i)
		byClass[y] = append(byClass[y], i)
	}
	next := 0
	for _, members := range byClass {
		perm := rng.Perm(len(members))
		for _, p := range perm {
			folds[next%k] = append(folds[next%k], members[p])
			next++
		}
	}
	return folds
}

// KFold returns k stratified (train, validation) views for
// cross-validation (used by TPOT, paper §3.2 footnote 1). Folds are pure
// index permutations: no feature row is copied. k is clamped to
// [2, Rows].
func (v View) KFold(k int, rng *rand.Rand) (trains, vals []View) {
	folds := v.KFoldIndices(k, rng)
	k = len(folds)
	trains = make([]View, k)
	vals = make([]View, k)
	for f := 0; f < k; f++ {
		var trainIdx []int
		for g := 0; g < k; g++ {
			if g != f {
				trainIdx = append(trainIdx, folds[g]...)
			}
		}
		shuffleInts(trainIdx, rng)
		trains[f] = v.Select(trainIdx)
		vals[f] = v.Select(folds[f])
	}
	return trains, vals
}

// Bootstrap returns a view of Rows() instances sampled with replacement,
// as used by bagging.
func (v View) Bootstrap(rng *rand.Rand) View {
	idx := make([]int, v.Rows())
	for i := range idx {
		idx[i] = rng.IntN(v.Rows())
	}
	return v.Select(idx)
}

// Meta computes the viewed dataset's meta-features.
func (v View) Meta() MetaFeatures {
	m := MetaFeatures{
		LogRows:     math.Log(float64(max(v.Rows(), 1))),
		LogFeatures: math.Log(float64(max(v.Features(), 1))),
		LogClasses:  math.Log(float64(max(v.Classes(), 2))),
	}
	counts := v.ClassCounts()
	total := float64(v.Rows())
	minority := math.Inf(1)
	entropy := 0.0
	present := 0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		present++
		p := float64(c) / total
		entropy -= p * math.Log(p)
		if float64(c) < minority {
			minority = float64(c)
		}
	}
	if present > 1 {
		m.ClassEntropy = entropy / math.Log(float64(present))
	}
	if total > 0 && !math.IsInf(minority, 1) {
		m.MinorityFrac = minority / total
	}
	if v.Features() > 0 {
		m.CategoricalFrac = float64(v.NumCategorical()) / float64(v.Features())
	}
	numNumeric := 0
	skewSum := 0.0
	for j := 0; j < v.Features(); j++ {
		if v.Kind(j) != Numeric {
			continue
		}
		numNumeric++
		skewSum += math.Abs(v.columnSkew(j))
	}
	if numNumeric > 0 {
		m.MeanAbsSkew = skewSum / float64(numNumeric)
	}
	return m
}

// columnSkew computes the skewness of feature j over the view's rows in
// view order — the same accumulation order as the historical row-major
// implementation, so meta-features (and the warm starts keyed on them)
// are bit-identical.
func (v View) columnSkew(j int) float64 {
	n := float64(v.Rows())
	if n < 3 {
		return 0
	}
	col := v.f.Cols[j]
	var mean float64
	for i, rows := 0, v.Rows(); i < rows; i++ {
		mean += col[v.RowIndex(i)]
	}
	mean /= n
	var m2, m3 float64
	for i, rows := 0, v.Rows(); i < rows; i++ {
		diff := col[v.RowIndex(i)] - mean
		m2 += diff * diff
		m3 += diff * diff * diff
	}
	m2 /= n
	m3 /= n
	if m2 < 1e-12 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}
