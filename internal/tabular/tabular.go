// Package tabular provides the dataset representation shared by every ML
// and AutoML component in this repository.
//
// The paper's scope is supervised classification on tabular data with
// numeric and categorical attributes — "the most studied data modality by
// AutoML systems". A Dataset holds a dense row-major feature matrix, a
// per-feature kind (numeric or categorical, where categorical cells store
// integer codes), and integer class labels. The package supplies the split
// and resampling machinery the AutoML systems need: stratified train/test
// splits, hold-out validation splits, k-fold cross-validation, and
// stratified subsampling.
package tabular

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// FeatureKind distinguishes numeric from categorical attributes.
type FeatureKind int

const (
	// Numeric features hold continuous values.
	Numeric FeatureKind = iota
	// Categorical features hold non-negative integer category codes
	// stored as float64.
	Categorical
)

// String implements fmt.Stringer.
func (k FeatureKind) String() string {
	if k == Categorical {
		return "categorical"
	}
	return "numeric"
}

// Dataset is a supervised classification dataset.
type Dataset struct {
	// Name identifies the dataset (e.g. the OpenML task name).
	Name string
	// X is the row-major feature matrix; all rows have equal length.
	X [][]float64
	// Y holds one class label in [0, Classes) per row.
	Y []int
	// Kinds gives the kind of each feature column. A nil Kinds means
	// all-numeric.
	Kinds []FeatureKind
	// Classes is the number of distinct class labels.
	Classes int
}

// Rows reports the number of instances.
func (d *Dataset) Rows() int { return len(d.X) }

// Features reports the number of attribute columns.
func (d *Dataset) Features() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Kind reports the kind of feature j, defaulting to Numeric when Kinds is
// nil.
func (d *Dataset) Kind(j int) FeatureKind {
	if d.Kinds == nil || j < 0 || j >= len(d.Kinds) {
		return Numeric
	}
	return d.Kinds[j]
}

// NumCategorical reports how many features are categorical.
func (d *Dataset) NumCategorical() int {
	n := 0
	for _, k := range d.Kinds {
		if k == Categorical {
			n++
		}
	}
	return n
}

// Validate reports a descriptive error if the dataset is malformed.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return errors.New("tabular: dataset has no rows")
	}
	if len(d.Y) != len(d.X) {
		return fmt.Errorf("tabular: %d rows but %d labels", len(d.X), len(d.Y))
	}
	if d.Classes < 2 {
		return fmt.Errorf("tabular: need >= 2 classes, got %d", d.Classes)
	}
	width := len(d.X[0])
	if width == 0 {
		return errors.New("tabular: dataset has no features")
	}
	if d.Kinds != nil && len(d.Kinds) != width {
		return fmt.Errorf("tabular: %d features but %d kinds", width, len(d.Kinds))
	}
	for i, row := range d.X {
		if len(row) != width {
			return fmt.Errorf("tabular: row %d has %d features, want %d", i, len(row), width)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("tabular: label %d of row %d outside [0,%d)", y, i, d.Classes)
		}
	}
	return nil
}

// Select returns a new dataset containing the rows at the given indices.
// The feature rows are shared, not copied; callers that mutate cells must
// CloneDeep first.
func (d *Dataset) Select(idx []int) *Dataset {
	out := &Dataset{
		Name:    d.Name,
		X:       make([][]float64, len(idx)),
		Y:       make([]int, len(idx)),
		Kinds:   d.Kinds,
		Classes: d.Classes,
	}
	for i, r := range idx {
		out.X[i] = d.X[r]
		out.Y[i] = d.Y[r]
	}
	return out
}

// CloneDeep returns a dataset with fully copied feature rows and labels.
func (d *Dataset) CloneDeep() *Dataset {
	out := &Dataset{
		Name:    d.Name,
		X:       make([][]float64, len(d.X)),
		Y:       append([]int(nil), d.Y...),
		Classes: d.Classes,
	}
	if d.Kinds != nil {
		out.Kinds = append([]FeatureKind(nil), d.Kinds...)
	}
	for i, row := range d.X {
		out.X[i] = append([]float64(nil), row...)
	}
	return out
}

// ClassCounts returns the number of instances per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		if y >= 0 && y < d.Classes {
			counts[y]++
		}
	}
	return counts
}

// StratifiedSplit partitions the dataset into two parts where the first
// receives approximately `frac` of each class. The split is deterministic
// given the rng. Each class contributes at least one instance to each side
// when it has at least two instances.
func (d *Dataset) StratifiedSplit(frac float64, rng *rand.Rand) (first, second *Dataset) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	byClass := make([][]int, d.Classes)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	var firstIdx, secondIdx []int
	for _, members := range byClass {
		if len(members) == 0 {
			continue
		}
		perm := rng.Perm(len(members))
		n := int(math.Round(frac * float64(len(members))))
		if len(members) >= 2 {
			if n == 0 {
				n = 1
			}
			if n == len(members) {
				n = len(members) - 1
			}
		}
		for i, p := range perm {
			if i < n {
				firstIdx = append(firstIdx, members[p])
			} else {
				secondIdx = append(secondIdx, members[p])
			}
		}
	}
	shuffleInts(firstIdx, rng)
	shuffleInts(secondIdx, rng)
	return d.Select(firstIdx), d.Select(secondIdx)
}

// TrainTestSplit applies the paper's 66/34 split (§3.1).
func (d *Dataset) TrainTestSplit(rng *rand.Rand) (train, test *Dataset) {
	return d.StratifiedSplit(0.66, rng)
}

// Subsample returns a stratified sample of up to n rows. If n >= Rows the
// dataset itself is returned.
func (d *Dataset) Subsample(n int, rng *rand.Rand) *Dataset {
	if n >= d.Rows() {
		return d
	}
	if n < d.Classes {
		n = d.Classes
	}
	frac := float64(n) / float64(d.Rows())
	sample, _ := d.StratifiedSplit(frac, rng)
	return sample
}

// SubsamplePerClass returns a stratified sample with up to perClass rows of
// each class, preserving at least one row per present class.
func (d *Dataset) SubsamplePerClass(perClass int, rng *rand.Rand) *Dataset {
	if perClass < 1 {
		perClass = 1
	}
	byClass := make([][]int, d.Classes)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	var idx []int
	for _, members := range byClass {
		if len(members) == 0 {
			continue
		}
		perm := rng.Perm(len(members))
		n := perClass
		if n > len(members) {
			n = len(members)
		}
		for _, p := range perm[:n] {
			idx = append(idx, members[p])
		}
	}
	shuffleInts(idx, rng)
	return d.Select(idx)
}

// KFoldIndices returns k stratified folds as row-index slices. k is
// clamped to [2, Rows].
func (d *Dataset) KFoldIndices(k int, rng *rand.Rand) [][]int {
	if k < 2 {
		k = 2
	}
	if k > d.Rows() {
		k = d.Rows()
	}
	folds := make([][]int, k)
	byClass := make([][]int, d.Classes)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	next := 0
	for _, members := range byClass {
		perm := rng.Perm(len(members))
		for _, p := range perm {
			folds[next%k] = append(folds[next%k], members[p])
			next++
		}
	}
	return folds
}

// KFold returns k stratified (train, validation) splits for cross-validation
// (used by TPOT, paper §3.2 footnote 1). k is clamped to [2, Rows].
func (d *Dataset) KFold(k int, rng *rand.Rand) (trains, vals []*Dataset) {
	folds := d.KFoldIndices(k, rng)
	k = len(folds)
	trains = make([]*Dataset, k)
	vals = make([]*Dataset, k)
	for f := 0; f < k; f++ {
		var trainIdx []int
		for g := 0; g < k; g++ {
			if g != f {
				trainIdx = append(trainIdx, folds[g]...)
			}
		}
		shuffleInts(trainIdx, rng)
		trains[f] = d.Select(trainIdx)
		vals[f] = d.Select(folds[f])
	}
	return trains, vals
}

// Bootstrap returns a dataset of Rows() instances sampled with replacement,
// as used by bagging.
func (d *Dataset) Bootstrap(rng *rand.Rand) *Dataset {
	idx := make([]int, d.Rows())
	for i := range idx {
		idx[i] = rng.IntN(d.Rows())
	}
	return d.Select(idx)
}

// Column copies feature column j into a new slice.
func (d *Dataset) Column(j int) []float64 {
	col := make([]float64, d.Rows())
	for i, row := range d.X {
		col[i] = row[j]
	}
	return col
}

func shuffleInts(s []int, rng *rand.Rand) {
	rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// MetaFeatures summarizes a dataset for meta-learning: warm starting
// (AutoSklearn 2) and representative-dataset clustering (paper §2.5 uses
// "metadata features, such as the number of features, instances, and
// classes").
type MetaFeatures struct {
	LogRows         float64
	LogFeatures     float64
	LogClasses      float64
	ClassEntropy    float64 // normalized to [0,1]
	MinorityFrac    float64 // size of smallest present class / rows
	CategoricalFrac float64
	MeanAbsSkew     float64 // mean |skewness| over numeric columns
}

// Meta computes the dataset's meta-features.
func (d *Dataset) Meta() MetaFeatures {
	m := MetaFeatures{
		LogRows:     math.Log(float64(max(d.Rows(), 1))),
		LogFeatures: math.Log(float64(max(d.Features(), 1))),
		LogClasses:  math.Log(float64(max(d.Classes, 2))),
	}
	counts := d.ClassCounts()
	total := float64(d.Rows())
	minority := math.Inf(1)
	entropy := 0.0
	present := 0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		present++
		p := float64(c) / total
		entropy -= p * math.Log(p)
		if float64(c) < minority {
			minority = float64(c)
		}
	}
	if present > 1 {
		m.ClassEntropy = entropy / math.Log(float64(present))
	}
	if total > 0 && !math.IsInf(minority, 1) {
		m.MinorityFrac = minority / total
	}
	if d.Features() > 0 {
		m.CategoricalFrac = float64(d.NumCategorical()) / float64(d.Features())
	}
	numNumeric := 0
	skewSum := 0.0
	for j := 0; j < d.Features(); j++ {
		if d.Kind(j) != Numeric {
			continue
		}
		numNumeric++
		skewSum += math.Abs(columnSkew(d, j))
	}
	if numNumeric > 0 {
		m.MeanAbsSkew = skewSum / float64(numNumeric)
	}
	return m
}

// Vector returns the meta-features as a fixed-order float vector for
// clustering and nearest-neighbour lookup.
func (m MetaFeatures) Vector() []float64 {
	return []float64{
		m.LogRows, m.LogFeatures, m.LogClasses,
		m.ClassEntropy, m.MinorityFrac, m.CategoricalFrac, m.MeanAbsSkew,
	}
}

func columnSkew(d *Dataset, j int) float64 {
	n := float64(d.Rows())
	if n < 3 {
		return 0
	}
	var mean float64
	for _, row := range d.X {
		mean += row[j]
	}
	mean /= n
	var m2, m3 float64
	for _, row := range d.X {
		diff := row[j] - mean
		m2 += diff * diff
		m3 += diff * diff * diff
	}
	m2 /= n
	m3 /= n
	if m2 < 1e-12 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}
