// Package tabular provides the dataset representation shared by every ML
// and AutoML component in this repository.
//
// The paper's scope is supervised classification on tabular data with
// numeric and categorical attributes — "the most studied data modality by
// AutoML systems". The working representation is the columnar Frame (one
// contiguous []float64 per feature, plus per-feature kinds and integer
// class labels) subset through zero-copy Views; see frame.go. The package
// supplies the split and resampling machinery the AutoML systems need —
// stratified train/test splits, hold-out validation splits, k-fold
// cross-validation, stratified subsampling — all as index permutations
// over a shared Frame rather than matrix copies.
//
// Dataset is the thin row-major adapter kept for CSV loading and external
// callers that naturally produce rows; Frame()/View() convert once into
// the columnar representation everything downstream consumes.
package tabular

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
)

// FeatureKind distinguishes numeric from categorical attributes.
type FeatureKind int

const (
	// Numeric features hold continuous values.
	Numeric FeatureKind = iota
	// Categorical features hold non-negative integer category codes
	// stored as float64.
	Categorical
)

// String implements fmt.Stringer.
func (k FeatureKind) String() string {
	if k == Categorical {
		return "categorical"
	}
	return "numeric"
}

// Dataset is the row-major adapter for supervised classification data:
// the ingestion format of the CSV loader and external examples. Internal
// consumers work on the columnar Frame obtained via Frame()/View();
// conversion transposes once and is cached, so the adapter must not be
// mutated after the first conversion.
type Dataset struct {
	// Name identifies the dataset (e.g. the OpenML task name).
	Name string
	// X is the row-major feature matrix; all rows have equal length.
	X [][]float64
	// Y holds one class label in [0, Classes) per row.
	Y []int
	// Kinds gives the kind of each feature column. A nil Kinds means
	// all-numeric.
	Kinds []FeatureKind
	// Classes is the number of distinct class labels.
	Classes int

	frameOnce sync.Once
	frame     *Frame
}

// Rows reports the number of instances.
func (d *Dataset) Rows() int { return len(d.X) }

// Features reports the number of attribute columns.
func (d *Dataset) Features() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Kind reports the kind of feature j, defaulting to Numeric when Kinds is
// nil.
func (d *Dataset) Kind(j int) FeatureKind {
	if d.Kinds == nil || j < 0 || j >= len(d.Kinds) {
		return Numeric
	}
	return d.Kinds[j]
}

// NumCategorical reports how many features are categorical.
func (d *Dataset) NumCategorical() int {
	n := 0
	for _, k := range d.Kinds {
		if k == Categorical {
			n++
		}
	}
	return n
}

// Validate reports a descriptive error if the dataset is malformed.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return errors.New("tabular: dataset has no rows")
	}
	if len(d.Y) != len(d.X) {
		return fmt.Errorf("tabular: %d rows but %d labels", len(d.X), len(d.Y))
	}
	if d.Classes < 2 {
		return fmt.Errorf("tabular: need >= 2 classes, got %d", d.Classes)
	}
	width := len(d.X[0])
	if width == 0 {
		return errors.New("tabular: dataset has no features")
	}
	if d.Kinds != nil && len(d.Kinds) != width {
		return fmt.Errorf("tabular: %d features but %d kinds", width, len(d.Kinds))
	}
	for i, row := range d.X {
		if len(row) != width {
			return fmt.Errorf("tabular: row %d has %d features, want %d", i, len(row), width)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.Classes {
			return fmt.Errorf("tabular: label %d of row %d outside [0,%d)", y, i, d.Classes)
		}
	}
	return nil
}

// Frame converts the adapter into columnar storage. The transpose
// happens once per dataset (guarded for concurrent callers); subsequent
// calls return the cached frame.
func (d *Dataset) Frame() *Frame {
	d.frameOnce.Do(func() {
		f := NewFrame(d.Name, d.Rows(), d.Features())
		f.Y = d.Y
		f.Kinds = d.Kinds
		f.Classes = d.Classes
		for i, row := range d.X {
			for j, v := range row {
				f.Cols[j][i] = v
			}
		}
		d.frame = f
	})
	return d.frame
}

// View returns the identity view of the dataset's columnar frame.
func (d *Dataset) View() View { return d.Frame().All() }

// CloneDeep returns a dataset with fully copied feature rows and labels.
func (d *Dataset) CloneDeep() *Dataset {
	out := &Dataset{
		Name:    d.Name,
		X:       make([][]float64, len(d.X)),
		Y:       append([]int(nil), d.Y...),
		Classes: d.Classes,
	}
	if d.Kinds != nil {
		out.Kinds = append([]FeatureKind(nil), d.Kinds...)
	}
	for i, row := range d.X {
		out.X[i] = append([]float64(nil), row...)
	}
	return out
}

// ClassCounts returns the number of instances per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Classes)
	for _, y := range d.Y {
		if y >= 0 && y < d.Classes {
			counts[y]++
		}
	}
	return counts
}

// TrainTestSplit applies the paper's 66/34 split (§3.1) as zero-copy
// views of the dataset's frame.
func (d *Dataset) TrainTestSplit(rng *rand.Rand) (train, test View) {
	return d.View().TrainTestSplit(rng)
}

// KFoldIndices returns k stratified folds as row-index slices. k is
// clamped to [2, Rows].
func (d *Dataset) KFoldIndices(k int, rng *rand.Rand) [][]int {
	return d.View().KFoldIndices(k, rng)
}

// KFold returns k stratified (train, validation) views for
// cross-validation. Folds are index permutations over the dataset's
// frame — no feature matrix is copied.
func (d *Dataset) KFold(k int, rng *rand.Rand) (trains, vals []View) {
	return d.View().KFold(k, rng)
}

// Meta computes the dataset's meta-features.
func (d *Dataset) Meta() MetaFeatures { return d.View().Meta() }

func shuffleInts(s []int, rng *rand.Rand) {
	rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// MetaFeatures summarizes a dataset for meta-learning: warm starting
// (AutoSklearn 2) and representative-dataset clustering (paper §2.5 uses
// "metadata features, such as the number of features, instances, and
// classes").
type MetaFeatures struct {
	LogRows         float64
	LogFeatures     float64
	LogClasses      float64
	ClassEntropy    float64 // normalized to [0,1]
	MinorityFrac    float64 // size of smallest present class / rows
	CategoricalFrac float64
	MeanAbsSkew     float64 // mean |skewness| over numeric columns
}

// Vector returns the meta-features as a fixed-order float vector for
// clustering and nearest-neighbour lookup.
func (m MetaFeatures) Vector() []float64 {
	return []float64{
		m.LogRows, m.LogFeatures, m.LogClasses,
		m.ClassEntropy, m.MinorityFrac, m.CategoricalFrac, m.MeanAbsSkew,
	}
}
