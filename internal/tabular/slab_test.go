package tabular

import (
	"math"
	"testing"
)

func TestFloat64SlabRoundTrip(t *testing.T) {
	vals := []float64{0, 1, -1, 0.5, math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 1e-308, math.NaN()}
	data := AppendFloat64Slab(nil, vals)
	if len(data) != Float64SlabSize(len(vals)) {
		t.Fatalf("encoded %d bytes, want %d", len(data), Float64SlabSize(len(vals)))
	}
	got, err := DecodeFloat64Slab(data, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		// Bit equality, not numeric equality: NaN payloads and -0 must
		// survive, or byte-identity of warm reruns breaks.
		if math.Float64bits(got[i]) != math.Float64bits(v) {
			t.Errorf("value %d: got bits %016x, want %016x", i, math.Float64bits(got[i]), math.Float64bits(v))
		}
	}
}

func TestFloat64SlabAppendsToPrefix(t *testing.T) {
	prefix := []byte{0xAA, 0xBB}
	data := AppendFloat64Slab(prefix, []float64{2.5})
	if len(data) != 2+8 {
		t.Fatalf("got %d bytes, want 10", len(data))
	}
	if data[0] != 0xAA || data[1] != 0xBB {
		t.Fatal("prefix clobbered")
	}
	got, err := DecodeFloat64Slab(data[2:], 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2.5 {
		t.Fatalf("got %v, want 2.5", got[0])
	}
}

func TestDecodeFloat64SlabShortBuffer(t *testing.T) {
	if _, err := DecodeFloat64Slab(make([]byte, 15), 2); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := DecodeFloat64Slab(nil, -1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestFlattenUnflattenRows(t *testing.T) {
	rows := [][]float64{{0.1, 0.9}, {0.7, 0.3}, {0.5}}
	slab, err := FlattenRows(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.1, 0.9, 0.7, 0.3, 0.5, 0}
	for i, v := range want {
		if slab[i] != v {
			t.Fatalf("slab[%d] = %v, want %v", i, slab[i], v)
		}
	}
	back, err := UnflattenRows(slab, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[1][0] != 0.7 || back[2][1] != 0 {
		t.Fatalf("unflatten mismatch: %v", back)
	}

	if _, err := FlattenRows([][]float64{{1, 2, 3}}, 2); err == nil {
		t.Fatal("over-wide row accepted")
	}
	if _, err := UnflattenRows(slab, 2, 2); err == nil {
		t.Fatal("mis-sized unflatten accepted")
	}
}
