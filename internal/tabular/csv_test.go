package tabular

import (
	"math"
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	csv := `age,income,city,label
25,50000,berlin,yes
30,60000,hamburg,no
35,?,berlin,yes
40,80000,munich,no
`
	ds, err := ReadCSV(strings.NewReader(csv), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rows() != 4 || ds.Features() != 3 {
		t.Fatalf("shape %dx%d, want 4x3", ds.Rows(), ds.Features())
	}
	if ds.Classes != 2 {
		t.Errorf("classes %d, want 2", ds.Classes)
	}
	// Labels are sorted codes: "no"=0, "yes"=1.
	if ds.Y[0] != 1 || ds.Y[1] != 0 {
		t.Errorf("labels %v", ds.Y)
	}
	// Numeric columns parsed, missing cell is NaN.
	if ds.X[0][0] != 25 || ds.X[0][1] != 50000 {
		t.Errorf("numeric row %v", ds.X[0])
	}
	if !math.IsNaN(ds.X[2][1]) {
		t.Errorf("missing income %v, want NaN", ds.X[2][1])
	}
	// City is categorical with sorted codes: berlin=0, hamburg=1,
	// munich=2.
	if ds.Kind(2) != Categorical {
		t.Error("city not categorical")
	}
	if ds.X[0][2] != 0 || ds.X[1][2] != 1 || ds.X[3][2] != 2 {
		t.Errorf("city codes %v %v %v", ds.X[0][2], ds.X[1][2], ds.X[3][2])
	}
}

func TestReadCSVTargetColumn(t *testing.T) {
	csv := `label,x
a,1
b,2
a,3
`
	ds, err := ReadCSV(strings.NewReader(csv), CSVOptions{TargetColumn: "label"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Features() != 1 || ds.Classes != 2 {
		t.Fatalf("shape %d features %d classes", ds.Features(), ds.Classes)
	}
	if ds.Y[0] != 0 || ds.Y[1] != 1 || ds.Y[2] != 0 {
		t.Errorf("labels %v", ds.Y)
	}
	if _, err := ReadCSV(strings.NewReader(csv), CSVOptions{TargetColumn: "nope"}); err == nil {
		t.Error("missing target column accepted")
	}
}

func TestReadCSVHeaderless(t *testing.T) {
	csv := "1,2,0\n3,4,1\n5,6,0\n7,8,1\n"
	ds, err := ReadCSV(strings.NewReader(csv), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Rows() != 4 {
		t.Errorf("headerless csv lost rows: %d", ds.Rows())
	}
	if ds.Classes != 2 {
		t.Errorf("classes %d", ds.Classes)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n"), CSVOptions{}); err == nil {
		t.Error("header-only input accepted")
	}
	// Ragged row (csv reader itself rejects).
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n"), CSVOptions{}); err == nil {
		t.Error("ragged row accepted")
	}
	// High-cardinality string feature (identifier-like).
	var sb strings.Builder
	sb.WriteString("id,label\n")
	for i := 0; i < 100; i++ {
		sb.WriteString(strings.Repeat("x", i%7+1))
		if i%2 == 0 {
			sb.WriteString(string(rune('a'+i%26)) + "q" + string(rune('0'+i%10)))
		}
		sb.WriteString(",")
		if i%2 == 0 {
			sb.WriteString("p\n")
		} else {
			sb.WriteString("q\n")
		}
	}
	// Build distinct ids properly.
	var sb2 strings.Builder
	sb2.WriteString("id,label\n")
	for i := 0; i < 100; i++ {
		sb2.WriteString("user")
		sb2.WriteString(strings.Repeat("z", i%3))
		sb2.WriteString(string(rune('a' + i%26)))
		sb2.WriteString(string(rune('0' + (i/26)%10)))
		sb2.WriteString(",p\n")
	}
	_, err := ReadCSV(strings.NewReader(sb2.String()), CSVOptions{MaxCategories: 16})
	if err == nil {
		t.Error("identifier-like column accepted")
	}
}

func TestReadCSVNumericTarget(t *testing.T) {
	csv := "x,y\n1.5,0\n2.5,1\n3.5,2\n4.5,1\n"
	ds, err := ReadCSV(strings.NewReader(csv), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Classes != 3 {
		t.Errorf("classes %d, want 3", ds.Classes)
	}
}
