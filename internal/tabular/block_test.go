package tabular

import "testing"

// blockFrame builds an n×d frame with distinct cell values
// (100*j + i) so gathered ranges are checkable by value.
func blockFrame(n, d int) *Frame {
	f := NewFrame("blocks", n, d)
	f.Classes = 2
	f.Y = make([]int, n)
	for j := 0; j < d; j++ {
		for i := 0; i < n; i++ {
			f.Cols[j][i] = float64(100*j + i)
		}
	}
	return f
}

// TestBlocksCoverage sweeps row counts across every len%8 remainder
// (plus empty and single-row views) and checks the block grid: ascending
// contiguous ranges, at most size rows each, final block carrying the
// remainder, every row covered exactly once.
func TestBlocksCoverage(t *testing.T) {
	f := blockFrame(26, 1)
	for n := 0; n <= 25; n++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		v := f.All().Select(idx)
		prev := 0
		covered := 0
		v.Blocks(BlockSize, func(lo, hi int) {
			if lo != prev {
				t.Fatalf("n=%d: block starts at %d, want %d (ascending contiguous)", n, lo, prev)
			}
			if hi <= lo {
				t.Fatalf("n=%d: empty block [%d,%d)", n, lo, hi)
			}
			if hi-lo > BlockSize {
				t.Fatalf("n=%d: block [%d,%d) wider than size %d", n, lo, hi, BlockSize)
			}
			if hi < n && hi-lo != BlockSize {
				t.Fatalf("n=%d: non-final block [%d,%d) is not full", n, lo, hi)
			}
			covered += hi - lo
			prev = hi
		})
		if covered != n {
			t.Fatalf("n=%d: blocks covered %d rows", n, covered)
		}
	}
}

// TestBlocksEmptyView checks a zero-row view yields no calls — for both
// the empty-subset and the zero-size-defaulting paths.
func TestBlocksEmptyView(t *testing.T) {
	v := blockFrame(5, 1).All().Select([]int{})
	for _, size := range []int{BlockSize, 0, -3} {
		calls := 0
		v.Blocks(size, func(lo, hi int) { calls++ })
		if calls != 0 {
			t.Fatalf("size=%d: empty view produced %d block calls", size, calls)
		}
	}
}

// TestBlocksSingleRow checks the minimal non-empty view is one block.
func TestBlocksSingleRow(t *testing.T) {
	v := blockFrame(5, 1).All().Select([]int{3})
	var got [][2]int
	v.Blocks(BlockSize, func(lo, hi int) { got = append(got, [2]int{lo, hi}) })
	if len(got) != 1 || got[0] != [2]int{0, 1} {
		t.Fatalf("single-row view blocks = %v, want [[0 1]]", got)
	}
}

// TestBlocksSizeDefault checks non-positive sizes fall back to
// BlockSize rather than looping forever or panicking.
func TestBlocksSizeDefault(t *testing.T) {
	v := blockFrame(20, 1).All()
	for _, size := range []int{0, -1} {
		var bounds [][2]int
		v.Blocks(size, func(lo, hi int) { bounds = append(bounds, [2]int{lo, hi}) })
		want := [][2]int{{0, 8}, {8, 16}, {16, 20}}
		if len(bounds) != len(want) {
			t.Fatalf("size=%d: %d blocks, want %d", size, len(bounds), len(want))
		}
		for i := range want {
			if bounds[i] != want[i] {
				t.Fatalf("size=%d: block %d = %v, want %v", size, i, bounds[i], want[i])
			}
		}
	}
}

// TestColRangeIdentityAliases checks the contiguous fast path: an
// identity view's ColRange is a zero-copy subslice of the frame column
// regardless of the dst passed in.
func TestColRangeIdentityAliases(t *testing.T) {
	f := blockFrame(16, 2)
	v := f.All()
	dst := make([]float64, 4)
	got := v.ColRange(1, 3, 9, dst)
	if len(got) != 6 {
		t.Fatalf("ColRange length %d, want 6", len(got))
	}
	if &got[0] != &f.Cols[1][3] {
		t.Error("identity ColRange copied; want an alias of the frame column")
	}
	for i, x := range got {
		if x != float64(100+3+i) {
			t.Fatalf("ColRange[%d] = %v, want %v", i, x, float64(100+3+i))
		}
	}
}

// TestColRangePermutedGathers checks the subset path on a permuted
// non-contiguous view: values come back in view order, and a dst with
// capacity is reused instead of reallocated.
func TestColRangePermutedGathers(t *testing.T) {
	f := blockFrame(10, 2)
	idx := []int{7, 2, 9, 0, 5, 1}
	v := f.All().Select(idx)
	dst := make([]float64, 8)
	got := v.ColRange(1, 1, 5, dst)
	if len(got) != 4 {
		t.Fatalf("ColRange length %d, want 4", len(got))
	}
	if &got[0] != &dst[0] {
		t.Error("ColRange reallocated despite sufficient dst capacity")
	}
	for i, r := range idx[1:5] {
		if got[i] != float64(100+r) {
			t.Fatalf("ColRange[%d] = %v, want row %d's value %v", i, got[i], r, float64(100+r))
		}
	}
	// Undersized dst grows rather than panicking.
	grown := v.ColRange(1, 0, 6, make([]float64, 0, 2))
	if len(grown) != 6 {
		t.Fatalf("grown ColRange length %d, want 6", len(grown))
	}
}

// TestColRangeBlocksMatchColInto stitches ColRange over the Blocks grid
// and demands the concatenation equal ColInto's full gather, on empty,
// single-row, remainder-lengthed and permuted views — the exact access
// pattern of the unrolled kernels.
func TestColRangeBlocksMatchColInto(t *testing.T) {
	f := blockFrame(21, 3)
	views := map[string]View{
		"identity":  f.All(),
		"empty":     f.All().Select([]int{}),
		"single":    f.All().Select([]int{13}),
		"remainder": f.All().Head(17),
		"permuted":  f.All().Select([]int{20, 3, 15, 7, 0, 11, 19, 2, 8, 16, 4}),
	}
	for name, v := range views {
		t.Run(name, func(t *testing.T) {
			for j := 0; j < f.Features(); j++ {
				want := v.ColInto(j, nil)
				var got []float64
				scratch := make([]float64, BlockSize)
				v.Blocks(BlockSize, func(lo, hi int) {
					got = append(got, v.ColRange(j, lo, hi, scratch)...)
				})
				if len(got) != len(want) {
					t.Fatalf("feature %d: stitched %d values, want %d", j, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("feature %d row %d: ColRange stitch %v != ColInto %v", j, i, got[i], want[i])
					}
				}
			}
		})
	}
}
