package tabular

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x7ab)) }

// blob builds a small dataset with `perClass` rows of each of `classes`
// classes.
func blob(classes, perClass, features int) *Dataset {
	ds := &Dataset{Name: "blob", Classes: classes}
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			row := make([]float64, features)
			for j := range row {
				row[j] = float64(c) + 0.1*float64(i)
			}
			ds.X = append(ds.X, row)
			ds.Y = append(ds.Y, c)
		}
	}
	return ds
}

func TestValidate(t *testing.T) {
	good := blob(3, 5, 2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Dataset)
		want   string
	}{
		{"no rows", func(d *Dataset) { d.X = nil; d.Y = nil }, "no rows"},
		{"label mismatch", func(d *Dataset) { d.Y = d.Y[:3] }, "labels"},
		{"one class", func(d *Dataset) { d.Classes = 1 }, "classes"},
		{"ragged row", func(d *Dataset) { d.X[2] = []float64{1} }, "features"},
		{"bad label", func(d *Dataset) { d.Y[0] = 99 }, "outside"},
		{"kinds mismatch", func(d *Dataset) { d.Kinds = []FeatureKind{Numeric} }, "kinds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := blob(3, 5, 2)
			tc.mutate(d)
			err := d.Validate()
			if err == nil {
				t.Fatal("Validate accepted a malformed dataset")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestAccessors(t *testing.T) {
	d := blob(2, 3, 4)
	if d.Rows() != 6 || d.Features() != 4 {
		t.Errorf("rows/features = %d/%d, want 6/4", d.Rows(), d.Features())
	}
	if d.Kind(0) != Numeric {
		t.Error("nil Kinds should default to numeric")
	}
	d.Kinds = []FeatureKind{Categorical, Numeric, Numeric, Numeric}
	if d.Kind(0) != Categorical || d.NumCategorical() != 1 {
		t.Error("categorical kind not reported")
	}
	if d.Kind(99) != Numeric {
		t.Error("out-of-range kind should default to numeric")
	}
	counts := d.ClassCounts()
	if counts[0] != 3 || counts[1] != 3 {
		t.Errorf("class counts %v", counts)
	}
	col := d.View().Col(1)
	if len(col) != 6 || col[0] != d.X[0][1] {
		t.Error("column extraction broken")
	}
	if (&Dataset{}).Features() != 0 {
		t.Error("empty dataset features != 0")
	}
}

func TestStratifiedSplit(t *testing.T) {
	d := blob(3, 30, 2)
	first, second := d.View().StratifiedSplit(0.4, testRNG(1))
	if first.Rows()+second.Rows() != d.Rows() {
		t.Fatalf("split lost rows: %d + %d != %d", first.Rows(), second.Rows(), d.Rows())
	}
	for c, n := range first.ClassCounts() {
		if n != 12 {
			t.Errorf("class %d: first part has %d rows, want 12 (40%% of 30)", c, n)
		}
	}
	// Each class must be present on both sides even at extreme
	// fractions.
	tiny, rest := d.View().StratifiedSplit(0.001, testRNG(2))
	for c, n := range tiny.ClassCounts() {
		if n == 0 {
			t.Errorf("class %d missing from tiny side", c)
		}
	}
	for c, n := range rest.ClassCounts() {
		if n == 0 {
			t.Errorf("class %d missing from rest side", c)
		}
	}
	// Fractions clamp.
	a, b := d.View().StratifiedSplit(-1, testRNG(3))
	if a.Rows() != 3 || b.Rows() != d.Rows()-3 {
		// One per class stays on the first side.
		t.Errorf("clamped split sizes: %d/%d", a.Rows(), b.Rows())
	}
}

func TestTrainTestSplitIs66_34(t *testing.T) {
	d := blob(2, 100, 3)
	train, test := d.TrainTestSplit(testRNG(4))
	if train.Rows() != 132 || test.Rows() != 68 {
		t.Errorf("66/34 split sizes: %d/%d", train.Rows(), test.Rows())
	}
}

func TestSubsample(t *testing.T) {
	d := blob(2, 100, 2)
	s := d.View().Subsample(40, testRNG(5))
	if math.Abs(float64(s.Rows())-40) > 2 {
		t.Errorf("subsample size %d, want ~40", s.Rows())
	}
	if got := d.View().Subsample(1000, testRNG(6)); got.Rows() != d.Rows() || !got.Contiguous() {
		t.Error("oversized subsample should return the identity view unchanged")
	}
	counts := s.ClassCounts()
	if counts[0] == 0 || counts[1] == 0 {
		t.Error("subsample lost a class")
	}
}

func TestSubsamplePerClass(t *testing.T) {
	d := blob(3, 50, 2)
	s := d.View().SubsamplePerClass(7, testRNG(7))
	for c, n := range s.ClassCounts() {
		if n != 7 {
			t.Errorf("class %d has %d rows, want 7", c, n)
		}
	}
	// Requesting more than available caps at the class size.
	s2 := d.View().SubsamplePerClass(500, testRNG(8))
	if s2.Rows() != d.Rows() {
		t.Errorf("oversized per-class sample has %d rows, want %d", s2.Rows(), d.Rows())
	}
	s3 := d.View().SubsamplePerClass(0, testRNG(9))
	if s3.Rows() != 3 {
		t.Errorf("zero per-class clamps to 1: got %d rows", s3.Rows())
	}
}

func TestKFoldPartition(t *testing.T) {
	d := blob(3, 20, 2)
	trains, vals := d.KFold(5, testRNG(10))
	if len(trains) != 5 || len(vals) != 5 {
		t.Fatalf("fold counts %d/%d", len(trains), len(vals))
	}
	seen := 0
	for f := range vals {
		seen += vals[f].Rows()
		if trains[f].Rows()+vals[f].Rows() != d.Rows() {
			t.Errorf("fold %d: %d + %d != %d", f, trains[f].Rows(), vals[f].Rows(), d.Rows())
		}
		// Stratification: each fold's validation part has all classes.
		for c, n := range vals[f].ClassCounts() {
			if n == 0 {
				t.Errorf("fold %d validation missing class %d", f, c)
			}
		}
	}
	if seen != d.Rows() {
		t.Errorf("validation folds cover %d rows, want %d (each exactly once)", seen, d.Rows())
	}
}

func TestKFoldIndicesCoverEachRowOnce(t *testing.T) {
	d := blob(2, 17, 2) // odd sizes exercise remainder handling
	folds := d.KFoldIndices(4, testRNG(11))
	seen := make(map[int]int)
	for _, fold := range folds {
		for _, idx := range fold {
			seen[idx]++
		}
	}
	if len(seen) != d.Rows() {
		t.Fatalf("folds cover %d distinct rows, want %d", len(seen), d.Rows())
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("row %d appears %d times", idx, n)
		}
	}
	// Clamping.
	if got := d.KFoldIndices(1, testRNG(12)); len(got) != 2 {
		t.Errorf("k clamps to 2, got %d folds", len(got))
	}
}

// foldSink keeps KFold results reachable inside AllocsPerRun.
var foldSink []View

// TestKFoldAllocsNotPerRow pins the zero-copy contract of fold
// construction: folds are pure index permutations, so the allocation
// count may grow with slice doublings (logarithmic) but never per row.
// A row-copying implementation would allocate at least one slice per
// row and fail the per-row bound immediately.
func TestKFoldAllocsNotPerRow(t *testing.T) {
	count := func(perClass int) float64 {
		d := blob(2, perClass, 4)
		v := d.View() // warm the adapter's cached frame outside the measurement
		rng := testRNG(42)
		return testing.AllocsPerRun(20, func() {
			trains, vals := v.KFold(5, rng)
			foldSink = trains
			foldSink = vals
		})
	}
	small, big := count(100), count(1600) // 200 vs 3200 rows
	perRow := (big - small) / (3200 - 200)
	if perRow > 0.05 {
		t.Errorf("KFold allocates %.3f times per extra row (%.0f allocs at 200 rows, %.0f at 3200) — folds must be index permutations, not copies",
			perRow, small, big)
	}
}

func TestBootstrapSampling(t *testing.T) {
	d := blob(2, 25, 2)
	b := d.View().Bootstrap(testRNG(13))
	if b.Rows() != d.Rows() {
		t.Errorf("bootstrap has %d rows, want %d", b.Rows(), d.Rows())
	}
}

func TestSelectSharesRows(t *testing.T) {
	d := blob(2, 5, 2)
	s := d.View().Select([]int{0, 1})
	d.Frame().Cols[0][0] = 12345
	if s.At(0, 0) != 12345 {
		t.Error("Select should share column storage with the frame")
	}
	c := d.CloneDeep()
	c.X[1][0] = -999
	if d.X[1][0] == -999 {
		t.Error("CloneDeep should copy row storage")
	}
}

func TestMetaFeatures(t *testing.T) {
	d := blob(4, 25, 3)
	m := d.Meta()
	if m.LogRows <= 0 || m.LogFeatures <= 0 || m.LogClasses <= 0 {
		t.Errorf("log features non-positive: %+v", m)
	}
	if math.Abs(m.ClassEntropy-1) > 1e-9 {
		t.Errorf("balanced dataset entropy %v, want 1", m.ClassEntropy)
	}
	if math.Abs(m.MinorityFrac-0.25) > 1e-9 {
		t.Errorf("minority fraction %v, want 0.25", m.MinorityFrac)
	}
	if m.CategoricalFrac != 0 {
		t.Errorf("categorical fraction %v, want 0", m.CategoricalFrac)
	}
	// The frame conversion caches Kinds, so mutate a fresh adapter.
	d2 := blob(4, 25, 3)
	d2.Kinds = []FeatureKind{Categorical, Categorical, Numeric}
	if got := d2.Meta().CategoricalFrac; math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("categorical fraction %v, want 2/3", got)
	}
	vec := m.Vector()
	if len(vec) != 7 {
		t.Errorf("meta vector length %d, want 7", len(vec))
	}
}

func TestMetaImbalance(t *testing.T) {
	d := &Dataset{Name: "skew", Classes: 2}
	for i := 0; i < 90; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, 0)
	}
	for i := 0; i < 10; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, 1)
	}
	m := d.Meta()
	if m.ClassEntropy >= 1 {
		t.Errorf("imbalanced entropy %v, want < 1", m.ClassEntropy)
	}
	if math.Abs(m.MinorityFrac-0.1) > 1e-9 {
		t.Errorf("minority fraction %v, want 0.1", m.MinorityFrac)
	}
}
