package tabular

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// CSVOptions configure dataset parsing.
type CSVOptions struct {
	// TargetColumn names the label column; empty uses the last column.
	TargetColumn string
	// HasHeader marks the first row as column names (default assumed
	// true when any first-row cell is non-numeric).
	HasHeader bool
	// MaxCategories is the distinct-value threshold below which a
	// non-numeric column becomes categorical codes (default 64; columns
	// above it are rejected as likely identifiers).
	MaxCategories int
	// MissingValues lists cell strings treated as missing (default
	// "", "?", "NA", "NaN", "null").
	MissingValues []string
}

func (o CSVOptions) normalized() CSVOptions {
	if o.MaxCategories <= 0 {
		o.MaxCategories = 64
	}
	if o.MissingValues == nil {
		o.MissingValues = []string{"", "?", "NA", "NaN", "null"}
	}
	return o
}

// ReadCSV parses a delimited file into a Dataset: numeric columns stay
// numeric (missing cells become NaN for the imputer), non-numeric columns
// are ordinal-encoded as categorical codes, and the target column becomes
// integer class labels. This is the entry point for running the library
// on real data rather than the synthetic AMLB replicas.
func ReadCSV(r io.Reader, opts CSVOptions) (*Dataset, error) {
	opts = opts.normalized()
	reader := csv.NewReader(r)
	reader.TrimLeadingSpace = true
	rows, err := reader.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("tabular: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("tabular: empty csv")
	}

	header := rows[0]
	hasHeader := opts.HasHeader
	if !hasHeader {
		// Heuristic: a first row with any non-numeric, non-missing cell
		// is a header.
		for _, cell := range header {
			if !isMissing(cell, opts.MissingValues) {
				if _, err := strconv.ParseFloat(strings.TrimSpace(cell), 64); err != nil {
					hasHeader = true
					break
				}
			}
		}
	}
	var names []string
	var data [][]string
	if hasHeader {
		names = header
		data = rows[1:]
	} else {
		names = make([]string, len(header))
		for i := range names {
			names[i] = fmt.Sprintf("col%d", i)
		}
		data = rows
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("tabular: csv has a header but no data rows")
	}

	width := len(names)
	for i, row := range data {
		if len(row) != width {
			return nil, fmt.Errorf("tabular: row %d has %d cells, want %d", i+1, len(row), width)
		}
	}

	// Locate the target column.
	target := width - 1
	if opts.TargetColumn != "" {
		target = -1
		for i, n := range names {
			if n == opts.TargetColumn {
				target = i
				break
			}
		}
		if target < 0 {
			return nil, fmt.Errorf("tabular: target column %q not found", opts.TargetColumn)
		}
	}

	// Classify feature columns as numeric or categorical.
	type colInfo struct {
		numeric bool
		codes   map[string]int
		order   []string
	}
	infos := make([]colInfo, width)
	for j := 0; j < width; j++ {
		numeric := true
		distinct := map[string]bool{}
		for _, row := range data {
			cell := strings.TrimSpace(row[j])
			if isMissing(cell, opts.MissingValues) {
				continue
			}
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				numeric = false
			}
			distinct[cell] = true
		}
		info := colInfo{numeric: numeric}
		if !numeric || j == target {
			if len(distinct) > opts.MaxCategories && j != target {
				return nil, fmt.Errorf("tabular: column %q has %d distinct non-numeric values (max %d) — likely an identifier",
					names[j], len(distinct), opts.MaxCategories)
			}
			info.order = make([]string, 0, len(distinct))
			for v := range distinct {
				info.order = append(info.order, v)
			}
			sort.Strings(info.order)
			info.codes = make(map[string]int, len(info.order))
			for code, v := range info.order {
				info.codes[v] = code
			}
		}
		infos[j] = info
	}

	// Target labels: categorical columns use their codes; numeric
	// targets must hold small non-negative integers.
	targetInfo := infos[target]
	classes := len(targetInfo.order)
	labelOf := func(cell string) (int, error) {
		cell = strings.TrimSpace(cell)
		if targetInfo.numeric && targetInfo.codes == nil {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return 0, err
			}
			return int(v), nil
		}
		code, ok := targetInfo.codes[cell]
		if !ok {
			return 0, fmt.Errorf("unknown label %q", cell)
		}
		return code, nil
	}
	if targetInfo.numeric && targetInfo.codes != nil {
		// Numeric strings as categories — use codes anyway.
		classes = len(targetInfo.order)
	}

	ds := &Dataset{Name: "csv", Classes: classes, Kinds: make([]FeatureKind, 0, width-1)}
	for j := 0; j < width; j++ {
		if j == target {
			continue
		}
		if infos[j].numeric {
			ds.Kinds = append(ds.Kinds, Numeric)
		} else {
			ds.Kinds = append(ds.Kinds, Categorical)
		}
	}

	for i, row := range data {
		label, err := labelOf(row[target])
		if err != nil {
			return nil, fmt.Errorf("tabular: row %d: %w", i+1, err)
		}
		if label < 0 || label >= classes {
			return nil, fmt.Errorf("tabular: row %d: label %d outside [0,%d)", i+1, label, classes)
		}
		features := make([]float64, 0, width-1)
		for j, cell := range row {
			if j == target {
				continue
			}
			cell = strings.TrimSpace(cell)
			switch {
			case isMissing(cell, opts.MissingValues):
				features = append(features, math.NaN())
			case infos[j].numeric:
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("tabular: row %d column %q: %w", i+1, names[j], err)
				}
				features = append(features, v)
			default:
				features = append(features, float64(infos[j].codes[cell]))
			}
		}
		ds.X = append(ds.X, features)
		ds.Y = append(ds.Y, label)
	}

	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("tabular: parsed csv invalid: %w", err)
	}
	return ds, nil
}

func isMissing(cell string, missing []string) bool {
	cell = strings.TrimSpace(cell)
	for _, m := range missing {
		if strings.EqualFold(cell, m) {
			return true
		}
	}
	return false
}
