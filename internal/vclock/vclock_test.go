package vclock

import (
	"math/rand" //greenlint:allow globalrand testing/quick needs a v1 *rand.Rand; the source is explicitly seeded
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(3 * time.Second)
	c.Advance(2 * time.Second)
	if got := c.Now(); got != 5*time.Second {
		t.Errorf("Now() = %v, want 5s", got)
	}
	c.Advance(-time.Hour)
	if got := c.Now(); got != 5*time.Second {
		t.Errorf("negative advance moved the clock to %v", got)
	}
	c.Advance(0)
	if got := c.Now(); got != 5*time.Second {
		t.Errorf("zero advance moved the clock to %v", got)
	}
}

func TestMakespanSingleWorkerIsSum(t *testing.T) {
	tasks := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if got := Makespan(tasks, 1); got != 6*time.Second {
		t.Errorf("Makespan(1 worker) = %v, want 6s", got)
	}
	if got := Makespan(tasks, 0); got != 6*time.Second {
		t.Errorf("Makespan(0 workers) = %v, want 6s (clamped)", got)
	}
}

func TestMakespanManyWorkersIsMax(t *testing.T) {
	tasks := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if got := Makespan(tasks, 10); got != 3*time.Second {
		t.Errorf("Makespan(10 workers) = %v, want 3s (the longest task)", got)
	}
}

func TestMakespanIgnoresNonPositive(t *testing.T) {
	tasks := []time.Duration{-time.Second, 0, 2 * time.Second}
	if got := Makespan(tasks, 1); got != 2*time.Second {
		t.Errorf("Makespan = %v, want 2s", got)
	}
}

// TestMakespanBounds property-checks the classic scheduling bounds:
// max(task) <= makespan <= sum(task), and more workers never increase the
// makespan.
func TestMakespanBounds(t *testing.T) {
	property := func(raw []uint16, workers uint8) bool {
		tasks := make([]time.Duration, len(raw))
		var sum, max time.Duration
		for i, r := range raw {
			tasks[i] = time.Duration(r) * time.Millisecond
			sum += tasks[i]
			if tasks[i] > max {
				max = tasks[i]
			}
		}
		w := int(workers%8) + 1
		m := Makespan(tasks, w)
		if m < max || m > sum {
			return false
		}
		return Makespan(tasks, w+1) <= m
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Error(err)
	}
}

func TestClockAdvanceParallel(t *testing.T) {
	c := New()
	tasks := []time.Duration{4 * time.Second, time.Second, time.Second, time.Second, time.Second}
	got := c.AdvanceParallel(tasks, 2)
	// Greedy: worker A takes 4s; worker B takes 1+1+1+1 = 4s.
	if got != 4*time.Second {
		t.Errorf("AdvanceParallel makespan = %v, want 4s", got)
	}
	if c.Now() != got {
		t.Errorf("clock at %v after makespan %v", c.Now(), got)
	}
}

func TestBudgetLifecycle(t *testing.T) {
	c := New()
	c.Advance(time.Minute)
	b := NewBudget(c, 10*time.Second)
	if b.Exceeded() {
		t.Fatal("fresh budget already exceeded")
	}
	if got := b.Remaining(); got != 10*time.Second {
		t.Errorf("Remaining = %v, want 10s", got)
	}
	c.Advance(4 * time.Second)
	if got := b.Elapsed(); got != 4*time.Second {
		t.Errorf("Elapsed = %v, want 4s", got)
	}
	c.Advance(7 * time.Second)
	if !b.Exceeded() {
		t.Error("budget not exceeded after 11s of 10s")
	}
	if got := b.Remaining(); got != -time.Second {
		t.Errorf("Remaining = %v, want -1s", got)
	}
	if b.Duration() != 10*time.Second {
		t.Errorf("Duration = %v, want 10s", b.Duration())
	}
}

func TestBudgetString(t *testing.T) {
	b := NewBudget(New(), time.Second)
	if b.String() == "" {
		t.Error("empty budget string")
	}
}

func TestMakespanNonPositiveWorkers(t *testing.T) {
	durations := []time.Duration{2 * time.Second, 3 * time.Second}
	// Zero or negative workers degrade to serial execution rather than
	// dividing by zero or returning nothing.
	for _, workers := range []int{0, -1, -100} {
		if got := Makespan(durations, workers); got != 5*time.Second {
			t.Errorf("workers=%d: makespan %v, want serial 5s", workers, got)
		}
	}
}

func TestMakespanAllNonPositiveDurations(t *testing.T) {
	durations := []time.Duration{0, -time.Second, -time.Minute}
	for _, workers := range []int{1, 4} {
		if got := Makespan(durations, workers); got != 0 {
			t.Errorf("workers=%d: makespan %v for all-nonpositive tasks, want 0", workers, got)
		}
	}
	if got := Makespan(nil, 4); got != 0 {
		t.Errorf("makespan of no tasks = %v, want 0", got)
	}
}

// TestProbeTracksAdvance pins the liveness hook: Probe mirrors Now
// exactly after every advance, and a zero clock probes at zero.
func TestProbeTracksAdvance(t *testing.T) {
	c := New()
	if c.Probe() != 0 {
		t.Fatalf("fresh clock probes at %v", c.Probe())
	}
	c.Advance(3 * time.Second)
	c.Advance(-time.Minute) // ignored; must not disturb the mirror
	c.Advance(2 * time.Second)
	if c.Probe() != c.Now() || c.Probe() != 5*time.Second {
		t.Fatalf("Probe = %v, Now = %v, want both 5s", c.Probe(), c.Now())
	}
}

// TestProbeConcurrent observes a clock from a second goroutine the way
// the scheduler's stall watchdog does: probes never run backwards and
// land on the final position once the owner is done. Run with -race.
func TestProbeConcurrent(t *testing.T) {
	c := New()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			c.Advance(time.Millisecond)
		}
	}()
	var last time.Duration
	for {
		select {
		case <-done:
			if got := c.Probe(); got != time.Second {
				t.Fatalf("final probe %v, want 1s", got)
			}
			return
		default:
			if p := c.Probe(); p < last {
				t.Fatalf("probe ran backwards: %v after %v", p, last)
			} else {
				last = p
			}
		}
	}
}
