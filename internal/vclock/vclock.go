// Package vclock provides a deterministic virtual clock for replaying
// compute-bound workloads without consuming wall-clock time.
//
// The paper's experiments run AutoML systems under wall-clock search budgets
// of 10 seconds to 5 minutes on a 28-core Xeon; the full sweep took 28 days.
// This reproduction replaces wall-clock with a virtual clock: every unit of
// work (model training, prediction, preprocessing) reports its cost in
// abstract floating-point operations, a hardware model converts that cost to
// seconds, and the clock advances accordingly. AutoML systems schedule
// against the virtual clock exactly as they would against time.Now, so
// budget-fidelity behaviour (paper Table 7) is emergent, not scripted.
package vclock

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a virtual clock. The zero value is a clock at time zero.
//
// Clock is not safe for concurrent use; each simulated run owns one clock.
// Simulated parallelism is expressed through AdvanceParallel, which advances
// the clock by the critical-path duration of a batch of parallel tasks.
// The single concurrency exception is Probe, the liveness hook: it reads
// an atomically mirrored position, so a watchdog on another goroutine can
// observe whether the owning run is still making virtual progress without
// racing the owner.
type Clock struct {
	now time.Duration
	// pos mirrors now for Probe. Advance is the only writer; keeping the
	// owner's fast path (Now) on the plain field costs probes nothing.
	pos atomic.Int64
}

// New returns a clock starting at time zero.
func New() *Clock { return &Clock{} }

// Now reports the current virtual time since the clock's origin.
func (c *Clock) Now() time.Duration { return c.now }

// Probe reports the clock's position like Now, but is safe to call from
// a goroutine that does not own the clock. It exists for liveness
// watchdogs: a run whose Probe value stops changing has stopped making
// virtual progress, whatever its wall-clock behaviour.
func (c *Clock) Probe() time.Duration { return time.Duration(c.pos.Load()) }

// Advance moves the clock forward by d. Negative durations are ignored:
// virtual time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
		c.pos.Store(int64(c.now))
	}
}

// AdvanceParallel advances the clock as if the given task durations executed
// concurrently on `workers` workers using longest-processing-time-first
// scheduling, and returns the makespan the clock advanced by. With one
// worker it degenerates to the sum of all durations.
func (c *Clock) AdvanceParallel(durations []time.Duration, workers int) time.Duration {
	m := Makespan(durations, workers)
	c.Advance(m)
	return m
}

// Makespan estimates the completion time of the given tasks on `workers`
// parallel workers under greedy longest-first scheduling. It is the
// scheduling model used for embarrassingly parallel AutoML workloads such
// as bagging.
func Makespan(durations []time.Duration, workers int) time.Duration {
	if workers <= 1 {
		var sum time.Duration
		for _, d := range durations {
			if d > 0 {
				sum += d
			}
		}
		return sum
	}
	// Greedy assignment to least-loaded worker, processing tasks in the
	// given order (systems submit tasks in priority order already, so a
	// full sort is unnecessary and would hide submission-order effects).
	loads := make([]time.Duration, workers)
	for _, d := range durations {
		if d <= 0 {
			continue
		}
		min := 0
		for i := 1; i < workers; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += d
	}
	var max time.Duration
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// StallCounter is the liveness rule shared by every watchdog in the
// harness: a position observed unchanged across Threshold consecutive
// probes means the observed party has stopped making progress. The
// in-process cell watchdog feeds it virtual-clock probes; the shard
// coordinator feeds it journal sizes — in both cases the probe cadence
// is operator-facing real time, but the stall verdict depends only on
// whether the monotone position advanced, never on how fast.
type StallCounter struct {
	threshold int
	last      int64
	idle      int
	primed    bool
}

// NewStallCounter returns a counter that reports a stall after
// threshold consecutive probes without progress. A threshold below one
// never reports a stall (a disabled watchdog).
func NewStallCounter(threshold int) *StallCounter {
	return &StallCounter{threshold: threshold}
}

// Observe records one probe of the monitored position and reports
// whether the stall threshold has been reached. The first observation
// primes the counter; any change of position resets it.
func (s *StallCounter) Observe(pos int64) bool {
	if !s.primed || pos != s.last {
		s.last, s.idle, s.primed = pos, 0, true
		return false
	}
	s.idle++
	return s.threshold > 0 && s.idle >= s.threshold
}

// Idle reports how many consecutive probes have seen no progress.
func (s *StallCounter) Idle() int { return s.idle }

// Budget couples a clock with a deadline. AutoML systems consult Remaining
// and Exceeded to implement their individual budget-fidelity policies.
type Budget struct {
	clock    *Clock
	start    time.Duration
	duration time.Duration
}

// NewBudget starts a budget of length d on clock c at the clock's current
// time.
func NewBudget(c *Clock, d time.Duration) *Budget {
	return &Budget{clock: c, start: c.Now(), duration: d}
}

// Clock returns the underlying clock.
func (b *Budget) Clock() *Clock { return b.clock }

// Duration reports the configured budget length.
func (b *Budget) Duration() time.Duration { return b.duration }

// Elapsed reports how much virtual time has passed since the budget started.
func (b *Budget) Elapsed() time.Duration { return b.clock.Now() - b.start }

// Remaining reports the virtual time left; it can be negative once the
// budget has been exceeded.
func (b *Budget) Remaining() time.Duration { return b.duration - b.Elapsed() }

// Exceeded reports whether the budget has been consumed.
func (b *Budget) Exceeded() bool { return b.Remaining() <= 0 }

// String implements fmt.Stringer.
func (b *Budget) String() string {
	return fmt.Sprintf("budget %s (elapsed %s)", b.duration, b.Elapsed())
}
