package greenlint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked compilation unit. A directory
// holds up to two units: the base package (non-test files plus
// in-package _test files, the unit `go test` compiles) and an external
// _test package. Both carry the directory's import path so
// path-conditional checks (globalrand's internal/... scope) treat them
// alike.
type Package struct {
	Path  string // import path, e.g. repro/internal/bench
	Dir   string
	Name  string // package name, e.g. bench or bench_test
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects non-fatal checker errors. Analysis still runs
	// on whatever was resolved; the driver surfaces these as warnings.
	TypeErrors []error
}

// Load parses and type-checks every package matched by patterns.
// Patterns are plain directories ("./internal/bench") or recursive
// wildcards ("./..."), resolved like the go tool: testdata, hidden, and
// underscore-prefixed directories are skipped by wildcards. The loader
// is stdlib-only — imports resolve through go/importer's source
// importer, so no binary export data or external module is needed.
func Load(fset *token.FileSet, patterns []string) ([]*Package, error) {
	modRoot, modPath, err := findModule()
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		units, err := parseDir(fset, dir, modRoot, modPath)
		if err != nil {
			return nil, err
		}
		for _, u := range units {
			check(fset, imp, u)
			pkgs = append(pkgs, u)
		}
	}
	return pkgs, nil
}

// findModule walks up from the working directory to go.mod and returns
// the module root and module path.
func findModule() (root, path string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("greenlint: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("greenlint: no go.mod found above working directory")
		}
		dir = parent
	}
}

// expandPatterns resolves package patterns to a deduplicated, sorted
// list of directories containing Go files.
func expandPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Clean(strings.TrimSuffix(rest, "/"))
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(p) {
					add(p)
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("greenlint: expanding %s: %w", pat, err)
			}
			continue
		}
		dir := filepath.Clean(pat)
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("greenlint: no Go files in %s", dir)
		}
		add(dir)
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}

// parseDir parses every Go file in dir and groups the files into the
// base unit and (if present) the external test unit.
func parseDir(fset *token.FileSet, dir, modRoot, modPath string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("greenlint: %w", err)
	}
	importPath, err := dirImportPath(dir, modRoot, modPath)
	if err != nil {
		return nil, err
	}
	byName := map[string][]*ast.File{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("greenlint: %w", err)
		}
		byName[f.Name.Name] = append(byName[f.Name.Name], f)
	}
	var units []*Package
	for _, name := range sortedKeys(byName) {
		units = append(units, &Package{
			Path:  importPath,
			Dir:   dir,
			Name:  name,
			Files: byName[name],
		})
	}
	return units, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func dirImportPath(dir, modRoot, modPath string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("greenlint: %s is outside module %s", dir, modPath)
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}

// check type-checks one unit, collecting rather than aborting on
// errors: a partially resolved package still yields useful findings.
func check(fset *token.FileSet, imp types.Importer, pkg *Package) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	path := pkg.Path
	if strings.HasSuffix(pkg.Name, "_test") {
		// External test packages get a distinct type-checker path so
		// the checker does not conflate them with the package under
		// test (which they import).
		path += "_test"
	}
	tpkg, _ := conf.Check(path, fset, pkg.Files, info)
	pkg.Types = tpkg
	pkg.Info = info
}
