package greenlint

// hotalloc keeps the PR 7 kernels allocation-free. The fused columnar
// scans in internal/ml and the Frame accessors in internal/tabular won
// their BENCH deltas by moving every allocation out of the per-row /
// per-candidate loops into reusable scratch; one careless `make`, a
// growing append, or an interface conversion in a kernel puts the
// allocator (and the GC) back on the hot path, and nothing fails — the
// numbers just quietly regress.
//
// A function opts into the discipline with
//
//	//greenlint:hotpath <reason>
//
// on its declaration. The constraint is transitive over the package-
// local call graph: everything a hot function calls within its package
// is hot too (cross-package calls are boundaries by contract — the
// hot kernels do not make them, and the analyzer cannot see past them
// anyway). Inside hot code the analyzer rejects allocation-bearing
// constructs:
//
//   - make and new;
//   - slice and map composite literals, and &T{} (heap-escaping);
//     plain struct/array value literals are allowed — they live on
//     the stack;
//   - append — growth is an allocation, and whether THIS call grows
//     is a runtime question the analyzer refuses to guess;
//   - function literals that capture variables — a capturing closure
//     allocates its environment (non-capturing literals are fine);
//   - interface boxing: passing, assigning, or returning a concrete
//     non-pointer value where an interface is expected (pointers and
//     existing interfaces move without allocating);
//   - string<->[]byte/[]rune conversions, which copy.
//
// Exceptions carry //greenlint:allow hotalloc <reason> like any other
// check — e.g. an amortized grow path behind a cap check.

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotAlloc is the hot-path allocation analyzer.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions annotated //greenlint:hotpath (and their package-local callees) must not contain allocation-bearing constructs",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	attached, _ := funcDirectives(p)
	var roots []*types.Func
	for _, fd := range attached {
		if fd.verb == "hotpath" {
			roots = append(roots, fd.fn)
		}
	}
	if len(roots) == 0 {
		return
	}
	g := buildCallGraph(p)
	hot := g.reach(roots)
	for fn, root := range hot {
		fd := g.decls[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		if strings.HasSuffix(p.Fset.Position(fd.Pos()).Filename, "_test.go") {
			continue
		}
		why := ""
		if root != fn {
			why = " (hot via " + root.Name() + ")"
		}
		checkHotFunc(p, fd, why)
	}
}

// checkHotFunc walks one hot function body for allocation-bearing
// constructs. why names the hotpath root when the function is hot by
// propagation rather than by its own annotation.
func checkHotFunc(p *Pass, fd *ast.FuncDecl, why string) {
	var results *types.Tuple
	if obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
		results = obj.Type().(*types.Signature).Results()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, n, why)

		case *ast.CompositeLit:
			switch p.typeOf(n).Underlying().(type) {
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal allocates on a hot path%s; hoist it into reusable scratch", why)
			case *types.Map:
				p.Reportf(n.Pos(), "map literal allocates on a hot path%s; hoist it into reusable scratch", why)
			}

		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf(cl.Pos(), "&composite literal escapes to the heap on a hot path%s; reuse a preallocated value", why)
				}
			}

		case *ast.FuncLit:
			if captures(p, n) {
				p.Reportf(n.Pos(), "capturing closure allocates its environment on a hot path%s; pass state explicitly or hoist the closure", why)
			}
			// The literal's body runs wherever the value is called;
			// the capture check above prices its creation, and the
			// body is still walked for allocations below.

		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Lhs) != len(n.Rhs) {
					break
				}
				lt := p.typeOf(n.Lhs[i])
				if lt != nil && boxes(p, lt, rhs) {
					p.Reportf(rhs.Pos(), "assignment boxes a concrete value into an interface on a hot path%s; use a pointer or avoid the interface", why)
				}
			}

		case *ast.ReturnStmt:
			if results == nil || len(n.Results) != results.Len() {
				break
			}
			for i, res := range n.Results {
				if boxes(p, results.At(i).Type(), res) {
					p.Reportf(res.Pos(), "return boxes a concrete value into an interface on a hot path%s; use a pointer or avoid the interface", why)
				}
			}
		}
		return true
	})
}

// checkHotCall flags builtins and argument boxing for one call inside a
// hot function.
func checkHotCall(p *Pass, call *ast.CallExpr, why string) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				p.Reportf(call.Pos(), "make allocates on a hot path%s; hoist the buffer into reusable scratch", why)
			case "new":
				p.Reportf(call.Pos(), "new allocates on a hot path%s; reuse a preallocated value", why)
			case "append":
				p.Reportf(call.Pos(), "append may grow (allocate) on a hot path%s; presize the buffer and index into it", why)
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune copy, and T(x) where T is an
	// interface boxes exactly like an assignment would.
	if tv, ok := p.Pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := p.typeOf(call)
		from := p.typeOf(call.Args[0])
		if to != nil && from != nil && stringSliceConv(to, from) {
			p.Reportf(call.Pos(), "string/slice conversion copies on a hot path%s; keep one representation", why)
		}
		if boxes(p, to, call.Args[0]) {
			p.Reportf(call.Pos(), "conversion boxes a concrete value into an interface on a hot path%s; use a pointer or avoid the interface", why)
		}
		return
	}
	// Argument boxing against the callee signature.
	sig, ok := p.typeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic():
			if call.Ellipsis.IsValid() {
				continue // slice passed through whole, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if boxes(p, pt, arg) {
			p.Reportf(arg.Pos(), "argument boxes a concrete value into an interface on a hot path%s; use a pointer or avoid the interface", why)
		}
	}
}

// boxes reports whether storing expr into a destination of type dst
// allocates an interface box: dst is an interface and expr's type is a
// concrete non-pointer type (and not an untyped constant — constants
// box into rodata, not the heap).
func boxes(p *Pass, dst types.Type, expr ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := p.Pkg.Info.Types[expr]
	if !ok || tv.Value != nil {
		return false // constant
	}
	at := tv.Type
	if at == nil || types.IsInterface(at) {
		return false
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: fits the interface word
	}
	if bt, ok := at.Underlying().(*types.Basic); ok && bt.Info()&types.IsUntyped != 0 {
		return false
	}
	return true
}

// stringSliceConv reports whether (to, from) is a copying conversion
// between string and []byte/[]rune in either direction.
func stringSliceConv(to, from types.Type) bool {
	return (isString(to) && isByteOrRuneSlice(from)) || (isString(from) && isByteOrRuneSlice(to))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// captures reports whether a function literal references any variable
// declared outside itself (receiver-less package-level names do not
// count — globals are not part of a closure environment).
func captures(p *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == p.Pkg.Types.Scope() || v.Parent() == types.Universe {
			return true // package-level or universe: not captured
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		found = true
		return false
	})
	return found
}
