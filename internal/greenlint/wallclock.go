package greenlint

import (
	"go/ast"
)

// Wallclock rejects direct wall-clock reads and wall-clock timers.
// Every duration and energy figure the harness emits is derived from
// the deterministic virtual clock (internal/vclock) and the energy
// meter (internal/energy); a time.Now or time.Since in a measured path
// silently re-couples results to the host machine, a time.Sleep burns
// real seconds the virtual clock never sees, and a time.After or
// time.NewTicker smuggles real-time scheduling into code whose ordering
// must be a pure function of virtual progress. Operator-facing sites —
// progress lines on stderr, the scheduler's stall-watchdog probe timer
// — are the only legitimate uses and must carry a //greenlint:allow
// naming why the site never influences a measured quantity.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Since/Sleep and wall-clock timers (After/Tick/NewTimer/NewTicker); measured code uses internal/vclock + internal/energy",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || p.pkgPathOf(sel.X) != "time" {
					return true
				}
				switch sel.Sel.Name {
				case "Now", "Since", "Sleep":
					p.Reportf(call.Pos(),
						"call to time.%s reads the wall clock; measured code must go through internal/vclock / internal/energy",
						sel.Sel.Name)
				case "After", "Tick", "NewTimer", "NewTicker", "AfterFunc":
					p.Reportf(call.Pos(),
						"call to time.%s arms a wall-clock timer; only operator-facing liveness machinery may do this, under a //greenlint:allow",
						sel.Sel.Name)
				}
				return true
			})
		}
	},
}
