package greenlint

import (
	"go/ast"
)

// Wallclock rejects direct wall-clock reads. Every duration and energy
// figure the harness emits is derived from the deterministic virtual
// clock (internal/vclock) and the energy meter (internal/energy); a
// time.Now or time.Since in a measured path silently re-couples results
// to the host machine, and a time.Sleep burns real seconds the virtual
// clock never sees. Operator-facing timers (progress lines on stderr)
// are the only legitimate sites and must carry a //greenlint:allow.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/time.Since/time.Sleep; measured code uses internal/vclock + internal/energy",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || p.pkgPathOf(sel.X) != "time" {
					return true
				}
				switch sel.Sel.Name {
				case "Now", "Since", "Sleep":
					p.Reportf(call.Pos(),
						"call to time.%s reads the wall clock; measured code must go through internal/vclock / internal/energy",
						sel.Sel.Name)
				}
				return true
			})
		}
	},
}
