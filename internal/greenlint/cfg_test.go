package greenlint

// Engine tests for the CFG builder, independent of any analyzer. The
// assertions are structural — which blocks exist, which edges connect
// them, what is reachable — rather than golden String() dumps, so the
// builder can renumber blocks without breaking the suite. The early-
// return and defer cases are the load-bearing ones: framerelease's
// leak guarantee is exactly "the obligation survives to Exit along the
// early-return edge".

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFGFromSrc parses `body` as the body of a function and builds
// its CFG.
func buildCFGFromSrc(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f(c bool, n int, xs []int, ch chan int) (int, error) {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parsing fixture body: %v\nbody:\n%s", err, body)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return BuildCFG(fd.Body, nil)
}

// blocksOfKind returns every block whose Kind matches.
func blocksOfKind(c *CFG, kind string) []*Block {
	var out []*Block
	for _, b := range c.Blocks {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

// oneBlock returns the single block of the given kind, failing loudly
// on zero or several.
func oneBlock(t *testing.T, c *CFG, kind string) *Block {
	t.Helper()
	bs := blocksOfKind(c, kind)
	if len(bs) != 1 {
		t.Fatalf("want exactly one %q block, got %d\n%s", kind, len(bs), c)
	}
	return bs[0]
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

// reachable reports whether `to` is reachable from `from` over edges.
func reachable(from, to *Block) bool {
	seen := map[*Block]bool{}
	var dfs func(*Block) bool
	dfs = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

// nodeTexts renders a block's nodes for containment assertions.
func nodeTexts(b *Block) string {
	var sb strings.Builder
	for _, n := range b.Nodes {
		sb.WriteString(nodeText(n))
		sb.WriteString(";")
	}
	return sb.String()
}

func nodeText(n ast.Node) string {
	cfg := &CFG{Blocks: []*Block{{Nodes: []ast.Node{n}}}}
	s := cfg.String()
	if i := strings.Index(s, "{"); i >= 0 {
		if j := strings.LastIndex(s, "}"); j > i {
			return s[i+1 : j]
		}
	}
	return s
}

func TestCFGIfElseJoins(t *testing.T) {
	c := buildCFGFromSrc(t, `
		x := 0
		if c {
			x = 1
		} else {
			x = 2
		}
		return x, nil
	`)
	then := oneBlock(t, c, "if.then")
	els := oneBlock(t, c, "if.else")
	done := oneBlock(t, c, "if.done")
	if !hasEdge(c.Entry, then) || !hasEdge(c.Entry, els) {
		t.Fatalf("condition block must branch to both arms\n%s", c)
	}
	if !hasEdge(then, done) || !hasEdge(els, done) {
		t.Fatalf("both arms must rejoin at if.done\n%s", c)
	}
	if !reachable(done, c.Exit) {
		t.Fatalf("if.done must reach Exit\n%s", c)
	}
}

// TestCFGEarlyReturnEdge pins the edge framerelease's leak check rides:
// the then-arm of an early return goes straight to Exit, bypassing the
// code after the if.
func TestCFGEarlyReturnEdge(t *testing.T) {
	c := buildCFGFromSrc(t, `
		if c {
			return 0, nil
		}
		n = 1
		return n, nil
	`)
	then := oneBlock(t, c, "if.then")
	done := oneBlock(t, c, "if.done")
	if !hasEdge(then, c.Exit) {
		t.Fatalf("early return must edge directly to Exit\n%s", c)
	}
	if hasEdge(then, done) || reachable(then, done) {
		t.Fatalf("the early-return arm must not fall through to the code after the if\n%s", c)
	}
	if !strings.Contains(nodeTexts(done), "n = 1") {
		t.Fatalf("statements after the if belong to if.done, got %q\n%s", nodeTexts(done), c)
	}
}

func TestCFGForLoop(t *testing.T) {
	c := buildCFGFromSrc(t, `
		s := 0
		for i := 0; i < n; i++ {
			s += i
		}
		return s, nil
	`)
	head := oneBlock(t, c, "for.head")
	body := oneBlock(t, c, "for.body")
	post := oneBlock(t, c, "for.post")
	done := oneBlock(t, c, "for.done")
	if !hasEdge(head, body) || !hasEdge(head, done) {
		t.Fatalf("loop head must branch to body and done\n%s", c)
	}
	if !hasEdge(body, post) || !hasEdge(post, head) {
		t.Fatalf("back edge must run body -> post -> head\n%s", c)
	}
	if !reachable(done, c.Exit) {
		t.Fatalf("for.done must reach Exit\n%s", c)
	}
}

func TestCFGRangeLoop(t *testing.T) {
	c := buildCFGFromSrc(t, `
		s := 0
		for _, x := range xs {
			s += x
		}
		return s, nil
	`)
	head := oneBlock(t, c, "range.head")
	body := oneBlock(t, c, "range.body")
	done := oneBlock(t, c, "range.done")
	if !hasEdge(head, body) || !hasEdge(head, done) {
		t.Fatalf("range head must branch to body and done\n%s", c)
	}
	if !hasEdge(body, head) {
		t.Fatalf("range body must edge back to head\n%s", c)
	}
	if !strings.Contains(nodeTexts(head), "xs") {
		t.Fatalf("the ranged operand must be evaluated in the head, got %q", nodeTexts(head))
	}
}

func TestCFGSwitchFallthroughAndDefault(t *testing.T) {
	c := buildCFGFromSrc(t, `
		switch n {
		case 0:
			n = 1
			fallthrough
		case 1:
			n = 2
		}
		return n, nil
	`)
	cases := blocksOfKind(c, "switch.case")
	if len(cases) != 2 {
		t.Fatalf("want 2 case blocks, got %d\n%s", len(cases), c)
	}
	done := oneBlock(t, c, "switch.done")
	if !hasEdge(cases[0], cases[1]) {
		t.Fatalf("fallthrough must edge case 0 -> case 1\n%s", c)
	}
	if !hasEdge(c.Entry, done) {
		t.Fatalf("a switch without default must edge head -> done for the no-match path\n%s", c)
	}

	// With a default clause the no-match edge disappears.
	c2 := buildCFGFromSrc(t, `
		switch n {
		case 0:
			n = 1
		default:
			n = 2
		}
		return n, nil
	`)
	done2 := oneBlock(t, c2, "switch.done")
	if hasEdge(c2.Entry, done2) {
		t.Fatalf("a switch with default covers every path; head must not edge to done\n%s", c2)
	}
}

// TestCFGDeferStaysInStream pins the defer contract: the DeferStmt is
// an ordinary node on the path where it executes (so framerelease can
// flip the state to owned-with-deferred-release), not an edge.
func TestCFGDeferStaysInStream(t *testing.T) {
	c := buildCFGFromSrc(t, `
		defer func() {}()
		if c {
			return 0, nil
		}
		return 1, nil
	`)
	foundDefer := false
	for _, n := range c.Entry.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			foundDefer = true
		}
	}
	if !foundDefer {
		t.Fatalf("the DeferStmt must appear as a node in the entry block\n%s", c)
	}
	then := oneBlock(t, c, "if.then")
	if !hasEdge(then, c.Exit) {
		t.Fatalf("the early return after the defer must still edge to Exit\n%s", c)
	}
}

// TestCFGPanicEdge pins the panic/ordinary-exit separation framerelease
// and meteredcost rely on: panic paths reach PanicExit, never Exit.
func TestCFGPanicEdge(t *testing.T) {
	c := buildCFGFromSrc(t, `
		if c {
			panic("boom")
		}
		return 0, nil
	`)
	then := oneBlock(t, c, "if.then")
	if !hasEdge(then, c.PanicExit) {
		t.Fatalf("panic must edge to PanicExit\n%s", c)
	}
	if reachable(then, c.Exit) {
		t.Fatalf("the panicking arm must not reach the ordinary Exit\n%s", c)
	}
	if !reachable(c.Entry, c.Exit) {
		t.Fatalf("the non-panicking path must still reach Exit\n%s", c)
	}
}

// TestCFGRecoverBody pins that a recover-bearing deferred literal is
// opaque: its body is not inlined into the enclosing graph.
func TestCFGRecoverBody(t *testing.T) {
	c := buildCFGFromSrc(t, `
		defer func() {
			if r := recover(); r != nil {
				n = 0
			}
		}()
		panic("boom")
	`)
	// The literal's if must not contribute if.then/if.done blocks to the
	// outer graph.
	if got := len(blocksOfKind(c, "if.then")); got != 0 {
		t.Fatalf("function-literal bodies must stay opaque, found %d inlined if.then blocks\n%s", got, c)
	}
	if !hasEdge(c.Entry, c.PanicExit) {
		t.Fatalf("the unconditional panic must edge entry -> PanicExit\n%s", c)
	}
	if reachable(c.Entry, c.Exit) {
		t.Fatalf("nothing after an unconditional panic reaches Exit\n%s", c)
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	c := buildCFGFromSrc(t, `
	outer:
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if c {
					break outer
				}
			}
		}
		return 0, nil
	`)
	fors := blocksOfKind(c, "for.done")
	if len(fors) != 2 {
		t.Fatalf("want 2 for.done blocks, got %d\n%s", len(fors), c)
	}
	// The outer loop's done block is created before the inner one.
	outerDone, innerDone := fors[0], fors[1]
	if outerDone.Index > innerDone.Index {
		outerDone, innerDone = innerDone, outerDone
	}
	thens := blocksOfKind(c, "if.then")
	if len(thens) != 1 {
		t.Fatalf("want 1 if.then block, got %d\n%s", len(thens), c)
	}
	if !hasEdge(thens[0], outerDone) {
		t.Fatalf("break outer must edge to the outer loop's done block\n%s", c)
	}
	if hasEdge(thens[0], innerDone) {
		t.Fatalf("break outer must bypass the inner loop's done block\n%s", c)
	}
}

func TestCFGGotoForward(t *testing.T) {
	c := buildCFGFromSrc(t, `
		if c {
			goto out
		}
		n = 1
	out:
		return n, nil
	`)
	label := oneBlock(t, c, "label.out")
	then := oneBlock(t, c, "if.then")
	if !hasEdge(then, label) {
		t.Fatalf("goto must edge to the labeled block\n%s", c)
	}
	done := oneBlock(t, c, "if.done")
	if !hasEdge(done, label) {
		t.Fatalf("fallthrough into the label must also edge there\n%s", c)
	}
	if !reachable(label, c.Exit) {
		t.Fatalf("the labeled return must reach Exit\n%s", c)
	}
}
