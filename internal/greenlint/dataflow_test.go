package greenlint

// Solver tests on synthetic lattices, independent of any analyzer: a
// hand-built diamond-with-loop CFG, a reaching-labels analysis whose
// fixpoint is known by inspection, and the fuel bound that turns a
// non-monotone transfer function into an error instead of a hang.

import (
	"sort"
	"strings"
	"testing"
)

// setLattice is a powerset lattice over strings: Bottom is the empty
// set, Join is union — the textbook may-analysis shape.
type setLattice struct{}

func (setLattice) Bottom() Fact { return map[string]bool(nil) }

func (setLattice) Join(a, b Fact) Fact {
	av, bv := a.(map[string]bool), b.(map[string]bool)
	if len(av) == 0 {
		return bv
	}
	if len(bv) == 0 {
		return av
	}
	out := make(map[string]bool, len(av)+len(bv))
	for k := range av {
		out[k] = true
	}
	for k := range bv {
		out[k] = true
	}
	return out
}

func (setLattice) Equal(a, b Fact) bool {
	av, bv := a.(map[string]bool), b.(map[string]bool)
	if len(av) != len(bv) {
		return false
	}
	for k := range av {
		if !bv[k] {
			return false
		}
	}
	return true
}

func setString(f Fact) string {
	v := f.(map[string]bool)
	keys := make([]string, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

// diamondLoopCFG hand-builds
//
//	entry -> cond -> {left, right} -> join -> exit
//	                      ^                |
//	                      +---- back ------+
//
// without going through the builder, so the solver is tested in
// isolation.
func diamondLoopCFG() (*CFG, map[string]*Block) {
	c := &CFG{}
	mk := func(kind string) *Block {
		b := &Block{Index: len(c.Blocks), Kind: kind}
		c.Blocks = append(c.Blocks, b)
		return b
	}
	entry := mk("entry")
	exit := mk("exit")
	panicExit := mk("panic")
	cond := mk("cond")
	left := mk("left")
	right := mk("right")
	join := mk("join")
	entry.Succs = []*Block{cond}
	cond.Succs = []*Block{left, right}
	left.Succs = []*Block{join}
	right.Succs = []*Block{join}
	join.Succs = []*Block{exit, left} // loop back into the left arm
	c.Entry, c.Exit, c.PanicExit = entry, exit, panicExit
	byKind := map[string]*Block{}
	for _, b := range c.Blocks {
		byKind[b.Kind] = b
	}
	return c, byKind
}

// TestSolveForwardReachingLabels runs a gen-only reaching analysis: each
// named block adds its own label to the set. The fixpoint is readable
// off the graph by hand.
func TestSolveForwardReachingLabels(t *testing.T) {
	c, blocks := diamondLoopCFG()
	lat := setLattice{}
	transfer := func(b *Block, in Fact) Fact {
		inv := in.(map[string]bool)
		out := make(map[string]bool, len(inv)+1)
		for k := range inv {
			out[k] = true
		}
		switch b.Kind {
		case "left", "right", "cond":
			out[b.Kind] = true
		}
		return out
	}
	sol, err := SolveForward(c, lat, map[string]bool{"start": true}, transfer)
	if err != nil {
		t.Fatalf("SolveForward: %v", err)
	}
	cases := []struct {
		block string
		in    string
	}{
		{"cond", "start"},
		// left merges the cond edge and the loop back edge from join,
		// which has already seen both arms.
		{"left", "cond,left,right,start"},
		{"right", "cond,start"},
		{"join", "cond,left,right,start"},
		{"exit", "cond,left,right,start"},
	}
	for _, cse := range cases {
		got := setString(sol.In[blocks[cse.block]])
		if got != cse.in {
			t.Errorf("in[%s] = {%s}, want {%s}", cse.block, got, cse.in)
		}
	}
	if sol.Iterations < len(c.Blocks) {
		t.Errorf("Iterations = %d, want at least one visit per block (%d)", sol.Iterations, len(c.Blocks))
	}
	// The loop forces re-visits, but a monotone analysis on this graph
	// settles in a handful of sweeps — far under the fuel bound.
	if sol.Iterations > 4*len(c.Blocks) {
		t.Errorf("Iterations = %d; the fixpoint should settle within a few sweeps of %d blocks", sol.Iterations, len(c.Blocks))
	}
}

// growLattice never converges: every fact is a fresh int and Equal is
// always false, which models a non-monotone (or unbounded) transfer
// function. The solver must hit its fuel bound and say so, not spin.
type growLattice struct{}

func (growLattice) Bottom() Fact        { return 0 }
func (growLattice) Join(a, b Fact) Fact { return a.(int) + b.(int) }
func (growLattice) Equal(a, b Fact) bool {
	return false
}

func TestSolveForwardFuelBound(t *testing.T) {
	c, _ := diamondLoopCFG()
	transfer := func(b *Block, in Fact) Fact { return in.(int) + 1 }
	_, err := SolveForward(c, growLattice{}, 0, transfer)
	if err == nil {
		t.Fatal("SolveForward must error on a never-converging analysis instead of hanging")
	}
	if !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("error %q should name the exceeded visit bound", err)
	}
}

// TestVarLatticeLaws pins the semilattice laws the ownership analyses
// assume: union join, idempotence, commutativity, and bottom identity.
func TestVarLatticeLaws(t *testing.T) {
	lat := varLattice{}
	a := varState{"x": 1, "y": 2}
	b := varState{"y": 4, "z": 8}
	ab := lat.Join(a, b).(varState)
	if ab["x"] != 1 || ab["y"] != 6 || ab["z"] != 8 {
		t.Errorf("Join = %v, want x:1 y:6 z:8", ab)
	}
	if !lat.Equal(lat.Join(a, a), Fact(a)) {
		t.Error("Join(a, a) must equal a (idempotence)")
	}
	ba := lat.Join(b, a).(varState)
	if !lat.Equal(Fact(ab), Fact(ba)) {
		t.Error("Join must be commutative")
	}
	if !lat.Equal(lat.Join(lat.Bottom(), a), Fact(a)) {
		t.Error("Bottom must be the identity of Join")
	}
	// Join must not mutate its arguments (the solver reuses them).
	if a["y"] != 2 || b["y"] != 4 {
		t.Errorf("Join mutated its arguments: a=%v b=%v", a, b)
	}
}
