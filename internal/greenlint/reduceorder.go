package greenlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ReduceOrder guards the within-cell parallelism determinism bar. The
// ml kernels promise bit-identical probabilities, Costs and grid
// exports at every parallelism level; that holds only under the
// sanctioned reduction orders (internal/ml/parallel.go): goroutines
// write item-addressed slots or worker-local scratch, and cross-slot
// reduction happens on the calling goroutine in slot-index order. The
// classic way to break it is an innocent `sum += x` from a worker —
// float addition is not associative, so the accumulation order (and
// the output bits) would depend on goroutine scheduling. The check
// therefore flags, inside internal/ml:
//
//   - every `go` statement, and
//   - every write to a captured variable inside a go-launched function
//     literal — compound assignment, ++/--, or a plain assignment to a
//     bare identifier declared outside the literal.
//
// Disjoint-slot writes (x[i] = v into an item-addressed slice) are the
// sanctioned pattern and are not flagged. Every flagged site must
// carry a //greenlint:allow reduceorder annotation arguing why its
// order cannot leak into the output; an unannotated launch is a
// finding even when its body looks clean, because the argument belongs
// in the source next to the goroutine.
var ReduceOrder = &Analyzer{
	Name: "reduceorder",
	Doc:  "in internal/ml every goroutine launch, and every write to a captured variable inside one, must argue its reduction order",
	Run: func(p *Pass) {
		if !strings.HasSuffix(p.Pkg.Path, "/ml") {
			return
		}
		for _, f := range p.Pkg.Files {
			if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				p.Reportf(g.Pos(),
					"goroutine launch in the ml kernels; annotate the sanctioned reduction order (disjoint slots, caller-side reduce) or stay sequential")
				if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
					p.checkCapturedWrites(lit)
				}
				return true
			})
		}
	},
}

// checkCapturedWrites flags direct writes to variables the goroutine
// body captures from its enclosing scope. Nested function literals are
// included — a closure handed to sync.Once or defer still executes on
// the worker goroutine.
func (p *Pass) checkCapturedWrites(lit *ast.FuncLit) {
	captured := func(id *ast.Ident) bool {
		if id.Name == "_" {
			return false
		}
		obj, ok := p.Pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return false
		}
		return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && captured(id) {
					p.Reportf(id.Pos(),
						"goroutine writes captured variable %q; a shared accumulator makes the output depend on scheduling — write item-addressed slots and reduce on the caller", id.Name)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := st.X.(*ast.Ident); ok && captured(id) {
				p.Reportf(id.Pos(),
					"goroutine writes captured variable %q; a shared accumulator makes the output depend on scheduling — write item-addressed slots and reduce on the caller", id.Name)
			}
		}
		return true
	})
}
