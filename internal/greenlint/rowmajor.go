package greenlint

import (
	"go/ast"
	"strings"
)

// RowMajor guards the columnar data layout inside the ml kernels. The
// Frame refactor deleted every per-fit row-major materialization — the
// kernels read View columns in place — and the treeCore/histgbt speedups
// in BENCH_3.json exist exactly because no [][]float64 feature matrix is
// rebuilt per fit. A new `make([][]float64, ...)` (or a
// View.MaterializeRows call) in internal/ml is how that regression
// returns, one innocent-looking transpose at a time. Legitimate
// [][]float64 allocations remain — probability output rows mandated by
// the Classifier interface, class-by-feature parameter matrices,
// columnar column tables — and each carries a //greenlint:allow rowmajor
// annotation saying why it is not a feature matrix, so every new
// allocation must either be columnar or argue its case in the source.
var RowMajor = &Analyzer{
	Name: "rowmajor",
	Doc:  "forbid unannotated [][]float64 allocations and View.MaterializeRows in internal/ml; kernels are columnar",
	Run: func(p *Pass) {
		if !strings.HasSuffix(p.Pkg.Path, "/ml") {
			return
		}
		for _, f := range p.Pkg.Files {
			if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.CallExpr:
					if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
						if t := p.typeOf(e.Args[0]); t != nil && t.String() == "[][]float64" {
							p.Reportf(e.Pos(),
								"make([][]float64, ...) in the columnar ml kernels; read View columns in place, or annotate why this is not a row-major feature matrix")
						}
					}
					if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "MaterializeRows" {
						if t := p.typeOf(sel.X); t != nil && strings.HasSuffix(t.String(), "tabular.View") {
							p.Reportf(e.Pos(),
								"View.MaterializeRows reintroduces the per-fit transpose the columnar kernels deleted; iterate the view's columns instead")
						}
					}
				case *ast.CompositeLit:
					if t := p.typeOf(e); t != nil && t.String() == "[][]float64" {
						p.Reportf(e.Pos(),
							"[][]float64 literal in the columnar ml kernels; read View columns in place, or annotate why this is not a row-major feature matrix")
					}
				}
				return true
			})
		}
	},
}
