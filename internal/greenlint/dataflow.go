package greenlint

// A forward dataflow framework over the CFGs of cfg.go.
//
// The solver is the classic monotone worklist algorithm: block in-facts
// are the join of predecessor out-facts, out-facts are the transfer
// function applied to the block's nodes, and blocks requeue while their
// out-fact still moves. Lattices here are small (per-variable state
// bitmasks with set-union join), so the fixpoint is cheap; a defensive
// fuel bound turns a non-monotone transfer function into a loud failure
// instead of a hang.
//
// Facts are opaque to the solver. Clients provide a Lattice (bottom,
// join, equality) and a transfer function over whole blocks. Transfer
// functions MUST be pure with respect to their input fact (clone before
// mutating) and monotone; the analyzers in this package share the
// varState fact type below, which carries both properties.

import "fmt"

// Fact is one dataflow fact — an arbitrary client value.
type Fact any

// Lattice defines the join-semilattice a flow analysis runs over.
type Lattice interface {
	// Bottom is the identity of Join: the fact of an unreached block.
	Bottom() Fact
	// Join combines facts at a control-flow merge. It must not mutate
	// its arguments.
	Join(a, b Fact) Fact
	// Equal reports whether two facts are indistinguishable — the
	// solver's convergence test.
	Equal(a, b Fact) bool
}

// Solution is the fixpoint of a forward analysis: the fact entering and
// leaving every block.
type Solution struct {
	In, Out map[*Block]Fact
	// Iterations counts transfer-function applications until the
	// fixpoint — exposed so tests can pin convergence behaviour.
	Iterations int
}

// maxSolveVisits bounds transfer applications per block. Any monotone
// analysis on a finite lattice converges far below it; hitting the
// bound means the transfer function is buggy, and the solver says so
// rather than spinning.
const maxSolveVisits = 256

// SolveForward runs a forward dataflow analysis to fixpoint. entry is
// the fact flowing into the Entry block (joined with predecessor facts,
// which matters only for degenerate graphs where Entry has a back
// edge).
func SolveForward(c *CFG, lat Lattice, entry Fact, transfer func(*Block, Fact) Fact) (*Solution, error) {
	sol := &Solution{
		In:  make(map[*Block]Fact, len(c.Blocks)),
		Out: make(map[*Block]Fact, len(c.Blocks)),
	}
	for _, b := range c.Blocks {
		sol.In[b] = lat.Bottom()
		sol.Out[b] = lat.Bottom()
	}
	preds := c.Preds()
	order := c.ReversePostorder()

	queued := make(map[*Block]bool, len(order))
	queue := make([]*Block, 0, len(order))
	for _, b := range order {
		queue = append(queue, b)
		queued[b] = true
	}

	visits := make(map[*Block]int, len(order))
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b] = false

		in := lat.Bottom()
		if b == c.Entry {
			in = lat.Join(in, entry)
		}
		for _, p := range preds[b] {
			in = lat.Join(in, sol.Out[p])
		}
		sol.In[b] = in
		out := transfer(b, in)
		sol.Iterations++
		visits[b]++
		if visits[b] > maxSolveVisits {
			return nil, fmt.Errorf("greenlint: dataflow solver exceeded %d visits on block b%d (%s); non-monotone transfer function?",
				maxSolveVisits, b.Index, b.Kind)
		}
		if lat.Equal(out, sol.Out[b]) {
			continue
		}
		sol.Out[b] = out
		for _, s := range b.Succs {
			if !queued[s] {
				queued[s] = true
				queue = append(queue, s)
			}
		}
	}
	return sol, nil
}

// varState is the shared fact shape of the obligation analyses: a state
// bitmask per tracked variable (identified by its types.Object, passed
// as a comparable key). The bitmask is a SET of path-states — the union
// over all paths reaching the program point — so "may still be owned"
// and "may already be released" coexist and each triggers its own
// diagnostic.
type varState map[any]uint8

// varLattice is the join-semilattice over varState facts: key-wise
// bitmask union.
type varLattice struct{}

func (varLattice) Bottom() Fact { return varState(nil) }

func (varLattice) Join(a, b Fact) Fact {
	av, bv := a.(varState), b.(varState)
	if len(av) == 0 {
		return bv
	}
	if len(bv) == 0 {
		return av
	}
	out := make(varState, len(av)+len(bv))
	for k, v := range av {
		out[k] = v
	}
	for k, v := range bv {
		out[k] |= v
	}
	return out
}

func (varLattice) Equal(a, b Fact) bool {
	av, bv := a.(varState), b.(varState)
	if len(av) != len(bv) {
		return false
	}
	for k, v := range av {
		if bv[k] != v {
			return false
		}
	}
	return true
}

// clone copies a varState so transfer functions stay pure.
func (s varState) clone() varState {
	out := make(varState, len(s)+2)
	for k, v := range s {
		out[k] = v
	}
	return out
}
