package greenlint

import (
	"go/ast"
	"strings"
)

// GlobalRand rejects unseeded randomness in internal/... packages.
// Every grid cell derives its RNG stream from its own identity
// (system, dataset, budget, seed), which is what makes records
// byte-identical at any worker count and resumable mid-grid. math/rand
// v1 (flagged at the import) and the source-less top-level functions of
// math/rand/v2 (rand.IntN, rand.Perm, ...) both draw from a process-
// global generator whose sequence depends on call interleaving across
// goroutines — determinism poison. Constructors (rand.New, rand.NewPCG,
// rand.NewChaCha8) are the sanctioned way in.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid math/rand v1 and source-less math/rand/v2 top-level functions in internal/...",
	Run: func(p *Pass) {
		if !strings.Contains(p.Pkg.Path+"/", "/internal/") {
			return
		}
		for _, f := range p.Pkg.Files {
			for _, spec := range f.Imports {
				if spec.Path.Value == `"math/rand"` {
					p.Reportf(spec.Pos(),
						"import of math/rand (v1); use an explicitly seeded math/rand/v2 stream (rand.New(rand.NewPCG(...)))")
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || p.pkgPathOf(sel.X) != "math/rand/v2" {
					return true
				}
				if !strings.HasPrefix(sel.Sel.Name, "New") {
					p.Reportf(call.Pos(),
						"rand.%s draws from the process-global generator; derive an explicitly seeded *rand.Rand from the cell identity instead",
						sel.Sel.Name)
				}
				return true
			})
		}
	},
}
