package greenlint

// A lightweight package-local call graph, plus the function-level
// directive vocabulary (`//greenlint:owns`, `//greenlint:hotpath`).
//
// greenlint loads one package at a time through the source importer, so
// whole-program call graphs are out of reach by design — and not
// needed: the facts the analyzers propagate (takes ownership of a
// pooled frame, returns an owned frame, must stay allocation-free) are
// package-local properties of this repository's layering. Cross-package
// boundaries are handled by contract instead: ownership crosses them
// only through return values, and hot paths do not call across them.
//
// Function-level directives attach to a declaration either from inside
// its doc comment or from the line directly above the `func` keyword:
//
//	//greenlint:hotpath <reason>  — the function (and every package-
//	    local function it transitively calls) must not allocate; the
//	    hotalloc analyzer enforces it.
//	//greenlint:owns <reason>     — the function takes ownership of any
//	    pooled frame or view passed to it; callers' release obligations
//	    transfer at the call site (framerelease).

import (
	"go/ast"
	"go/types"
)

// callGraph holds one package's function declarations and their
// package-local call edges.
type callGraph struct {
	// decls maps each declared function/method object to its syntax.
	decls map[*types.Func]*ast.FuncDecl
	// callees lists the package-local functions each declaration calls
	// directly, in source order, deduplicated.
	callees map[*types.Func][]*types.Func
}

// buildCallGraph walks every function declaration in the package and
// records edges to callees that resolve to functions declared in the
// same package. Calls through interfaces, function values, and other
// packages have no edge — the graph answers "which local code runs
// under this function", nothing more.
func buildCallGraph(p *Pass) *callGraph {
	g := &callGraph{
		decls:   map[*types.Func]*ast.FuncDecl{},
		callees: map[*types.Func][]*types.Func{},
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[obj] = fd
			if fd.Body == nil {
				continue
			}
			seen := map[*types.Func]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := p.calleeFunc(call)
				if callee == nil || callee.Pkg() != p.Pkg.Types || seen[callee] {
					return true
				}
				seen[callee] = true
				g.callees[obj] = append(g.callees[obj], callee)
				return true
			})
		}
	}
	return g
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (plain function, package-qualified function, or method), or nil for
// builtins, conversions, and dynamic calls.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// reach computes the set of functions reachable from the roots over
// package-local call edges, mapping each reached function to the root
// annotation that pulled it in (for diagnostics). Roots map to
// themselves.
func (g *callGraph) reach(roots []*types.Func) map[*types.Func]*types.Func {
	owner := map[*types.Func]*types.Func{}
	var walk func(fn, root *types.Func)
	walk = func(fn, root *types.Func) {
		if _, ok := owner[fn]; ok {
			return
		}
		owner[fn] = root
		for _, callee := range g.callees[fn] {
			walk(callee, root)
		}
	}
	for _, r := range roots {
		walk(r, r)
	}
	return owner
}

// funcDirective is one function-level directive (owns/hotpath) bound to
// its declaration.
type funcDirective struct {
	directive
	fn *types.Func
}

// funcDirectives extracts every owns/hotpath directive and attaches it
// to the function it annotates. Directives that attach to no function
// are returned in dangling for validateDirectives to flag — an
// annotation floating in space must not silently grant (or fail to
// grant) anything.
func funcDirectives(p *Pass) (attached []funcDirective, dangling []directive) {
	type declSite struct {
		fn      *types.Func
		file    string
		funcLn  int
		docFrom int
		docTo   int
	}
	var sites []declSite
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			funcPos := p.Fset.Position(fd.Pos())
			s := declSite{fn: obj, file: funcPos.Filename, funcLn: funcPos.Line, docFrom: -1, docTo: -1}
			if fd.Doc != nil {
				s.docFrom = p.Fset.Position(fd.Doc.Pos()).Line
				s.docTo = p.Fset.Position(fd.Doc.End()).Line
				// fd.Pos() is the `func` keyword, but the doc group ends
				// directly above it; a directive as the doc's last line
				// has docTo == funcLn-1, covered by the range check.
			}
			sites = append(sites, s)
		}
	}
	for _, d := range parseDirectives(p.Fset, p.Pkg.Files) {
		if d.verb != "owns" && d.verb != "hotpath" {
			continue
		}
		var fn *types.Func
		for _, s := range sites {
			if d.pos.Filename != s.file {
				continue
			}
			if d.pos.Line+1 == s.funcLn || (s.docFrom >= 0 && d.pos.Line >= s.docFrom && d.pos.Line <= s.docTo) {
				fn = s.fn
				break
			}
		}
		if fn == nil {
			dangling = append(dangling, d)
			continue
		}
		attached = append(attached, funcDirective{directive: d, fn: fn})
	}
	return attached, dangling
}
