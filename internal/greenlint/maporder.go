package greenlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder rejects `for range` over a map that lets Go's randomized
// iteration order escape: writing to an io.Writer inside the loop, or
// appending to a slice that is never subsequently sorted. Either one
// silently breaks byte-identical emission — the exact class of bug that
// would corrupt grid-order output in internal/bench's export and
// render paths. The collect-keys-then-sort idiom stays legal: an
// append whose target is sorted later in the same function is not
// flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "forbid map iteration whose order leaks into slices or writers without a sort",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			var walk func(n ast.Node, blocks []*ast.BlockStmt)
			walk = func(n ast.Node, blocks []*ast.BlockStmt) {
				if n == nil {
					return
				}
				if rs, ok := n.(*ast.RangeStmt); ok && p.isMapType(rs.X) {
					p.checkMapRange(rs, blocks)
				}
				if b, ok := n.(*ast.BlockStmt); ok {
					blocks = append(blocks, b)
				}
				for _, child := range childNodes(n) {
					walk(child, blocks)
				}
			}
			walk(f, nil)
		}
	},
}

func (p *Pass) isMapType(expr ast.Expr) bool {
	t := p.typeOf(expr)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body. blocks is the stack of
// enclosing blocks, innermost last — the scope searched for a
// subsequent sort of any slice the body builds.
func (p *Pass) checkMapRange(rs *ast.RangeStmt, blocks []*ast.BlockStmt) {
	type appendSite struct {
		obj *types.Var
		pos token.Pos
	}
	var appends []appendSite
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure defined in the body runs later (or not at
			// all); its writes are not iteration-order emissions.
			return false
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !isAppendCall(rhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := p.Pkg.Info.ObjectOf(id).(*types.Var)
				if !ok || v.Pos() == token.NoPos {
					continue
				}
				if v.Pos() >= rs.Pos() && v.Pos() < rs.End() {
					continue // loop-local scratch cannot outlive the iteration
				}
				appends = append(appends, appendSite{obj: v, pos: n.Pos()})
			}
		case *ast.CallExpr:
			if target := p.writerTarget(n); target != "" {
				p.Reportf(n.Pos(),
					"write to %s inside range over a map emits in nondeterministic iteration order; iterate sorted keys instead", target)
			}
		}
		return true
	})
	for _, a := range appends {
		if p.sortedAfter(rs, blocks, a.obj) {
			continue
		}
		p.Reportf(a.pos,
			"slice %q is built from a map range and never sorted; sort it (or iterate sorted keys) before the order can leak into output", a.obj.Name())
	}
}

func isAppendCall(expr ast.Expr) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// writerTarget reports what a call writes to, or "" when it does not
// write: an argument or method receiver implementing io.Writer (covers
// fmt.Fprintf, strings.Builder, tabwriter), or a method named Write*
// on any receiver (covers csv.Writer, whose Write takes []string).
func (p *Pass) writerTarget(call *ast.CallExpr) string {
	for _, arg := range call.Args {
		if p.implementsWriter(p.typeOf(arg)) {
			return "io.Writer argument " + exprString(arg)
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && p.pkgPathOf(sel.X) == "" {
		recv := exprString(sel.X)
		if p.implementsWriter(p.typeOf(sel.X)) {
			return recv
		}
		if strings.HasPrefix(sel.Sel.Name, "Write") {
			return recv + "." + sel.Sel.Name
		}
	}
	return ""
}

// ioWriter is io.Writer rebuilt from scratch so the analyzer does not
// depend on the linted package importing io.
var ioWriter = func() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", byteSlice)), results, false)
	meth := types.NewFunc(token.NoPos, nil, "Write", sig)
	iface := types.NewInterfaceType([]*types.Func{meth}, nil)
	iface.Complete()
	return iface
}()

func (p *Pass) implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, ioWriter) || types.Implements(types.NewPointer(t), ioWriter)
}

// sortedAfter reports whether any statement after rs in an enclosing
// block sorts obj via the sort or slices package.
func (p *Pass) sortedAfter(rs *ast.RangeStmt, blocks []*ast.BlockStmt, obj *types.Var) bool {
	for _, block := range blocks {
		for _, stmt := range block.List {
			if stmt.Pos() <= rs.End() {
				continue
			}
			found := false
			ast.Inspect(stmt, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || found {
					return !found
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg := p.pkgPathOf(sel.X)
				if pkg != "sort" && pkg != "slices" {
					return true
				}
				for _, arg := range call.Args {
					ast.Inspect(arg, func(an ast.Node) bool {
						if id, ok := an.(*ast.Ident); ok && p.Pkg.Info.ObjectOf(id) == obj {
							found = true
						}
						return !found
					})
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

// childNodes lists the direct children of n, in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	default:
		return "expression"
	}
}
