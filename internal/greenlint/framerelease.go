package greenlint

// framerelease enforces the linear release discipline of pooled frames
// (PR 5): memory obtained from tabular.NewPooledFrame is owned by
// exactly one party, and that party must hand it back — `Release` on
// every path, including the early error return — or pass the obligation
// on, explicitly. Nothing else keeps the slab pool honest: a leaked
// frame is not a crash, it is a silently colder pool and a
// quietly-regressing allocs/op number two PRs later.
//
// The analysis is an intraprocedural forward dataflow over the CFG,
// with a package-local call graph propagating one interprocedural fact:
// "this function returns an owned frame" (so preprocess.outputFrame's
// callers inherit the obligation NewPooledFrame created inside it).
// Each tracked variable carries a set of path-states:
//
//	Owned     — obligation live, no release scheduled
//	Deferred  — obligation live, `defer x.Release()` registered
//	Released  — Release already ran on this path
//	Escaped   — ownership left this function (returned, stored,
//	            captured, or passed to a //greenlint:owns function)
//
// joined by set union at merges, so "released on the happy path, still
// owned on the error path" is visible as {Released, Owned} and reported
// as a possible leak. The checks:
//
//   - leak: a normal exit reachable with Owned in the state set (panic
//     exits are exempt — defers still run there, and a dying process is
//     not a pool-health problem);
//   - double release: Release (or a second defer of it) on a path-state
//     that is already Released or Deferred;
//   - use after release: any read of the variable while Released is a
//     possible path-state (reads under Deferred are fine — the deferred
//     call runs at exit, after every use);
//   - dropped result: a source call whose owned result is never bound,
//     returned, or passed to an owning function.
//
// Ownership transfers OUT of the analyzed function two ways, mirroring
// DESIGN.md's ownership model: the frame (or a view of it — a method
// call on the owned variable counts, so `return out.All()` transfers)
// appears in a return statement, or the variable is passed to a
// function annotated `//greenlint:owns <reason>`. Aliasing a frame into
// another variable, a field, a slice or a closure ends tracking
// conservatively (Escaped) rather than guessing — the analyzer promises
// no false leaks over clever code, and the golden fixtures pin what it
// does promise.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const (
	frOwned    uint8 = 1 << iota // obligation live
	frDeferred                   // obligation live, deferred release registered
	frReleased                   // released on this path
	frEscaped                    // ownership transferred; tracking over
)

// FrameRelease is the pooled-frame ownership analyzer.
var FrameRelease = &Analyzer{
	Name: "framerelease",
	Doc:  "pooled frames from tabular.NewPooledFrame must reach Release on every path, exactly once, or transfer ownership (return / //greenlint:owns)",
	Run:  runFrameRelease,
}

// tabularPkg reports whether pkg is the tabular package (matched by
// path suffix so the real package and module-internal mirrors agree).
func tabularPkg(pkg *types.Package) bool {
	return pkg != nil && strings.HasSuffix(pkg.Path(), "internal/tabular")
}

// isFrameCarrier reports whether t is *tabular.Frame or tabular.View —
// the two shapes an ownership obligation travels in.
func isFrameCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if !tabularPkg(obj.Pkg()) {
		return false
	}
	return obj.Name() == "Frame" || obj.Name() == "View"
}

// isNewPooledFrame reports whether fn is tabular.NewPooledFrame.
func isNewPooledFrame(fn *types.Func) bool {
	return fn != nil && fn.Name() == "NewPooledFrame" && tabularPkg(fn.Pkg())
}

// isReleaseMethod reports whether fn is (*tabular.Frame).Release.
func isReleaseMethod(fn *types.Func) bool {
	return fn != nil && fn.Name() == "Release" && tabularPkg(fn.Pkg())
}

// frameAnalysis carries the per-package state of one framerelease run.
type frameAnalysis struct {
	p *Pass
	// ownerFns are package-local functions whose return value carries
	// an owned frame — calling one is an ownership source, exactly like
	// calling NewPooledFrame.
	ownerFns map[*types.Func]bool
	// ownsFns are functions annotated //greenlint:owns — passing a
	// tracked frame to one transfers the release obligation.
	ownsFns map[*types.Func]bool
	// reported dedups findings across solver and report passes.
	reported map[string]bool
}

func runFrameRelease(p *Pass) {
	a := &frameAnalysis{
		p:        p,
		ownerFns: map[*types.Func]bool{},
		ownsFns:  map[*types.Func]bool{},
		reported: map[string]bool{},
	}
	attached, _ := funcDirectives(p)
	for _, fd := range attached {
		if fd.verb == "owns" {
			a.ownsFns[fd.fn] = true
		}
	}

	// Fixpoint on the owner-returning set: a function that returns a
	// variable bound to a source call (or a source call directly, or a
	// view derived from an owned variable) passes the obligation to its
	// caller. Syntactic, monotone, and package-local, so a handful of
	// sweeps settles it.
	for {
		changed := false
		for _, f := range p.Pkg.Files {
			if a.isTestFile(f) {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || a.ownerFns[obj] {
					continue
				}
				if a.returnsOwned(fd) {
					a.ownerFns[obj] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Analysis proper: every function declaration and every function
	// literal gets its own CFG and solve.
	for _, f := range p.Pkg.Files {
		if a.isTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					a.checkBody(fn.Body)
				}
			case *ast.FuncLit:
				a.checkBody(fn.Body)
			}
			return true
		})
	}
}

func (a *frameAnalysis) isTestFile(f *ast.File) bool {
	return strings.HasSuffix(a.p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// isSourceCall reports whether call's result carries a fresh ownership
// obligation.
func (a *frameAnalysis) isSourceCall(call *ast.CallExpr) bool {
	fn := a.p.calleeFunc(call)
	if fn == nil {
		return false
	}
	return isNewPooledFrame(fn) || a.ownerFns[fn]
}

// returnsOwned reports whether fd's return statements hand out a frame
// that fd itself owns: a source call returned directly, or a variable
// bound to one (possibly wrapped through a method call like .All()).
func (a *frameAnalysis) returnsOwned(fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	carriesFrame := false
	for _, r := range fd.Type.Results.List {
		if isFrameCarrier(a.p.typeOf(r.Type)) {
			carriesFrame = true
		}
	}
	if !carriesFrame {
		return false
	}
	ownedVars := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !a.isSourceCall(call) {
					continue
				}
				if len(as.Lhs) == len(as.Rhs) {
					if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						if obj := a.defOrUse(id); obj != nil {
							ownedVars[obj] = true
						}
					}
				} else if len(as.Rhs) == 1 {
					for _, lhs := range as.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
							if obj := a.defOrUse(id); obj != nil && isFrameCarrier(obj.Type()) {
								ownedVars[obj] = true
							}
						}
					}
				}
			}
		}
		return true
	})
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || found {
			return !found
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.CallExpr:
					if a.isSourceCall(m) {
						found = true
					}
				case *ast.Ident:
					if obj := a.defOrUse(m); obj != nil && ownedVars[obj] {
						found = true
					}
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func (a *frameAnalysis) defOrUse(id *ast.Ident) types.Object {
	if obj := a.p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return a.p.Pkg.Info.Uses[id]
}

// checkBody solves the ownership dataflow over one function body and
// reports violations.
func (a *frameAnalysis) checkBody(body *ast.BlockStmt) {
	cfg := BuildCFG(body, nil)

	// Bind each tracked variable to the source call that created its
	// obligation, for leak messages.
	srcPos := map[any]token.Pos{}
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !a.isSourceCall(call) {
					continue
				}
				for _, obj := range a.boundVars(as, i, call) {
					srcPos[obj] = call.Pos()
				}
			}
		}
	}

	lat := varLattice{}
	transfer := func(blk *Block, in Fact) Fact {
		st := in.(varState).clone()
		for _, n := range blk.Nodes {
			st = a.step(n, st, nil)
		}
		return st
	}
	sol, err := SolveForward(cfg, lat, varState{}, transfer)
	if err != nil {
		// A solver failure is a bug in this package, not in the code
		// under analysis; surface it loudly at the function head.
		a.p.Reportf(body.Pos(), "internal error: %v", err)
		return
	}

	// Report pass: one walk per block against its fixed in-fact.
	for _, blk := range cfg.Blocks {
		st := sol.In[blk].(varState).clone()
		for _, n := range blk.Nodes {
			st = a.step(n, st, func(pos token.Pos, format string, args ...any) {
				a.reportOnce(pos, format, args...)
			})
		}
	}

	// Exit obligations: Owned without Deferred on some path = leak.
	exitState := sol.In[cfg.Exit].(varState)
	for obj, mask := range exitState {
		if mask&frOwned != 0 {
			pos, ok := srcPos[obj]
			if !ok {
				continue
			}
			name := "frame"
			if o, ok := obj.(types.Object); ok {
				name = o.Name()
			}
			a.reportOnce(pos,
				"pooled frame %q may leak: not Released (or ownership-transferred) on every path to return; release it, return it, or pass it to a //greenlint:owns function", name)
		}
	}
}

func (a *frameAnalysis) reportOnce(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if a.reported[key] {
		return
	}
	a.reported[key] = true
	a.p.Reportf(pos, "%s", msg)
}

// boundVars resolves which variables an assignment binds to the source
// call at Rhs[i]: the positional LHS for 1:1 assignments, or every
// frame-carrying LHS of a multi-value unpacking.
func (a *frameAnalysis) boundVars(as *ast.AssignStmt, i int, call *ast.CallExpr) []types.Object {
	var out []types.Object
	if len(as.Lhs) == len(as.Rhs) {
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
			if obj := a.defOrUse(id); obj != nil {
				out = append(out, obj)
			}
		}
		return out
	}
	if len(as.Rhs) == 1 {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				if obj := a.defOrUse(id); obj != nil && isFrameCarrier(obj.Type()) {
					out = append(out, obj)
				}
			}
		}
	}
	return out
}

type frameReporter func(pos token.Pos, format string, args ...any)

// step applies one atomic node to the ownership state. rep is nil
// during fixpoint solving and non-nil during the report pass.
func (a *frameAnalysis) step(n ast.Node, st varState, rep frameReporter) varState {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return a.stepAssign(n, st, rep)

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					st = a.stepExpr(v, st, rep)
					if call, ok := ast.Unparen(v).(*ast.CallExpr); ok && a.isSourceCall(call) {
						// var x = NewPooledFrame(...): bind like :=
						if len(vs.Names) == 1 && vs.Names[0].Name != "_" {
							if obj := a.defOrUse(vs.Names[0]); obj != nil {
								st[obj] = frOwned
							}
						} else if rep != nil {
							rep(call.Pos(), "owned frame from %s is dropped; bind it so it can be Released", callName(call))
						}
					}
				}
			}
		}
		return st

	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			return a.stepCallStmt(call, st, rep, false)
		}
		return a.stepExpr(n.X, st, rep)

	case *ast.DeferStmt:
		return a.stepCallStmt(n.Call, st, rep, true)

	case *ast.GoStmt:
		return a.stepCallStmt(n.Call, st, rep, false)

	case *ast.ReturnStmt:
		for _, res := range n.Results {
			st = a.stepExpr(res, st, rep)
			// Everything reachable from a return expression transfers.
			for _, obj := range a.trackedIdentsIn(res, st) {
				st[obj] = frEscaped
			}
		}
		return st

	case *ast.SendStmt:
		st = a.stepExpr(n.Chan, st, rep)
		st = a.stepExpr(n.Value, st, rep)
		for _, obj := range a.trackedIdentsIn(n.Value, st) {
			st[obj] = frEscaped
		}
		return st

	case *ast.IncDecStmt:
		return a.stepExpr(n.X, st, rep)

	case ast.Expr:
		return a.stepExpr(n, st, rep)
	}
	return st
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}

// stepAssign handles uses, escapes, overwrites and new bindings.
func (a *frameAnalysis) stepAssign(as *ast.AssignStmt, st varState, rep frameReporter) varState {
	// RHS first: uses, escapes-by-alias, and nested source calls.
	for _, rhs := range as.Rhs {
		st = a.stepExpr(rhs, st, rep)
		// Aliasing: assigning the tracked variable itself, or a frame
		// view derived from it, moves ownership somewhere we cannot
		// see. End tracking.
		switch e := ast.Unparen(rhs).(type) {
		case *ast.Ident:
			if obj := a.tracked(e, st); obj != nil {
				st[obj] = frEscaped
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && isFrameCarrier(a.p.typeOf(e)) {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := a.tracked(id, st); obj != nil {
						st[obj] = frEscaped
					}
				}
			}
		}
	}
	// LHS component expressions (index/selector bases) are reads too.
	for _, lhs := range as.Lhs {
		if _, ok := lhs.(*ast.Ident); !ok {
			st = a.stepExpr(lhs, st, rep)
		}
	}
	// Overwrites and fresh bindings.
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			// An owned result bound to _ is a drop.
			if i < len(as.Rhs) || len(as.Rhs) == 1 {
				rhs := as.Rhs[min(i, len(as.Rhs)-1)]
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && a.isSourceCall(call) && len(as.Lhs) == len(as.Rhs) {
					if rep != nil {
						rep(call.Pos(), "owned frame from %s is dropped (bound to _); bind it so it can be Released", callName(call))
					}
				}
			}
			continue
		}
		obj := a.defOrUse(id)
		if obj == nil {
			continue
		}
		if mask, ok := st[obj]; ok && mask&frOwned != 0 {
			if rep != nil {
				rep(id.Pos(), "pooled frame %q overwritten while still owned; Release it first", id.Name)
			}
		}
		delete(st, obj)
	}
	// New obligations.
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !a.isSourceCall(call) {
			continue
		}
		bound := a.boundVars(as, i, call)
		if len(bound) == 0 {
			if rep != nil {
				rep(call.Pos(), "owned frame from %s is dropped; bind it so it can be Released", callName(call))
			}
			continue
		}
		for _, obj := range bound {
			st[obj] = frOwned
		}
	}
	return st
}

// stepCallStmt handles a call in statement position: Release calls,
// ownership-taking callees, dropped source results, and ordinary uses.
func (a *frameAnalysis) stepCallStmt(call *ast.CallExpr, st varState, rep frameReporter, deferred bool) varState {
	// x.Release()
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, _ := a.p.Pkg.Info.Uses[sel.Sel].(*types.Func); isReleaseMethod(fn) {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := a.tracked(id, st); obj != nil {
					mask := st[obj]
					if mask&(frReleased|frDeferred) != 0 && rep != nil {
						rep(call.Pos(), "pooled frame %q may be released twice (an earlier Release or deferred Release covers this path)", id.Name)
					}
					if deferred {
						st[obj] = (mask &^ frOwned) | frDeferred
					} else {
						st[obj] = (mask &^ (frOwned | frDeferred)) | frReleased
					}
					return st
				}
			}
		}
	}
	// Callee that takes ownership of its frame arguments.
	if fn := a.p.calleeFunc(call); fn != nil && a.ownsFns[fn] {
		st = a.stepExpr(call.Fun, st, rep)
		for _, arg := range call.Args {
			st = a.stepExpr(arg, st, rep)
			for _, obj := range a.trackedIdentsIn(arg, st) {
				st[obj] = frEscaped
			}
		}
		return st
	}
	// A source call whose result is discarded leaks immediately.
	if a.isSourceCall(call) && rep != nil {
		rep(call.Pos(), "owned frame from %s is dropped; bind it so it can be Released", callName(call))
	}
	return a.stepExpr(call, st, rep)
}

// stepExpr walks an expression for reads of tracked variables (flagging
// use-after-release) and for closures capturing them (escape). Function
// literal bodies are not descended into beyond capture detection — they
// run elsewhere and get their own CFG.
func (a *frameAnalysis) stepExpr(e ast.Expr, st varState, rep frameReporter) varState {
	if e == nil {
		return st
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			for _, obj := range a.capturedTracked(n, st) {
				st[obj] = frEscaped
			}
			return false
		case *ast.CallExpr:
			// Nested source calls in expression position transfer to
			// the surrounding expression; handled by callers where the
			// context is known (assign/return). Keep walking for uses.
			return true
		case *ast.Ident:
			if obj := a.tracked(n, st); obj != nil {
				if st[obj]&frReleased != 0 && rep != nil {
					rep(n.Pos(), "pooled frame %q may be used after Release on some path", n.Name)
				}
			}
		}
		return true
	})
	return st
}

// tracked resolves id to a tracked variable, or nil.
func (a *frameAnalysis) tracked(id *ast.Ident, st varState) types.Object {
	obj := a.p.Pkg.Info.Uses[id]
	if obj == nil {
		return nil
	}
	if _, ok := st[obj]; !ok {
		return nil
	}
	return obj
}

// trackedIdentsIn collects tracked variables referenced anywhere in e
// (skipping function-literal bodies).
func (a *frameAnalysis) trackedIdentsIn(e ast.Expr, st varState) []types.Object {
	var out []types.Object
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := a.tracked(id, st); obj != nil {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

// capturedTracked lists tracked variables a function literal captures.
func (a *frameAnalysis) capturedTracked(lit *ast.FuncLit, st varState) []types.Object {
	var out []types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := a.p.Pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		if _, tracked := st[types.Object(obj)]; tracked {
			out = append(out, obj)
		}
		return true
	})
	return out
}
