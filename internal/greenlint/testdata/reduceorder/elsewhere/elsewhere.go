// Package elsewhere proves the reduceorder check is scoped to /ml
// packages: goroutines and shared accumulators are fine here (the
// bench scheduler has its own determinism contract and its own
// synchronization idioms).
package elsewhere

import "sync"

func sharedAccumulator(xs []float64) float64 {
	var sum float64
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(len(xs))
	for _, x := range xs {
		go func(v float64) {
			defer wg.Done()
			mu.Lock()
			sum += v
			mu.Unlock()
		}(x)
	}
	wg.Wait()
	return sum
}
