// Package ml is the reduceorder fixture: its directory ends in /ml so
// the path-scoped check treats it like the real kernel package.
package ml

import "sync"

func work() error { return nil }

// sharedAccumulator is the canonical violation: the launch is
// unannotated and the workers fold into shared variables, so the float
// accumulation order depends on goroutine scheduling.
func sharedAccumulator(xs []float64) float64 {
	var sum float64
	var count int
	var wg sync.WaitGroup
	wg.Add(len(xs))
	for _, x := range xs {
		go func(v float64) { // want "goroutine launch in the ml kernels"
			defer wg.Done()
			sum += v // want "captured variable \"sum\""
			count++  // want "captured variable \"count\""
		}(x)
	}
	wg.Wait()
	_ = count
	return sum
}

// disjointSlots is the sanctioned pattern: each worker writes only its
// own item-addressed slot and the caller reduces in index order. The
// slot writes are clean; only the launch needs its annotation.
func disjointSlots(xs []float64) float64 {
	out := make([]float64, len(xs))
	var wg sync.WaitGroup
	wg.Add(len(xs))
	for i := range xs {
		//greenlint:allow reduceorder workers write only their own slot; the caller reduces in index order
		go func(i int) {
			defer wg.Done()
			out[i] = xs[i] * 2
		}(i)
	}
	wg.Wait()
	var sum float64
	for _, v := range out {
		sum += v
	}
	return sum
}

// plainAssign: a bare captured identifier written with = is as
// scheduling-dependent as +=; last writer wins.
func plainAssign() error {
	var firstErr error
	var wg sync.WaitGroup
	wg.Add(1)
	//greenlint:allow reduceorder fixture: the launch is annotated so only the write below reports
	go func() {
		defer wg.Done()
		firstErr = work() // want "captured variable \"firstErr\""
	}()
	wg.Wait()
	return firstErr
}

// nestedClosure: a closure handed to sync.Once still runs on the
// worker goroutine, so its captured writes are flagged too.
func nestedClosure() int {
	var once sync.Once
	var val int
	var wg sync.WaitGroup
	wg.Add(1)
	//greenlint:allow reduceorder fixture: the launch is annotated so only the nested write reports
	go func() {
		defer wg.Done()
		once.Do(func() {
			val = 1 // want "captured variable \"val\""
		})
	}()
	wg.Wait()
	return val
}

// localState: variables declared inside the goroutine (including its
// parameters) are worker-local and never flagged.
func localState(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	//greenlint:allow reduceorder fixture: every write below is to goroutine-local state
	go func(seed int) {
		defer wg.Done()
		local := seed
		local++
		local = local * 2
		seed += local
		_ = seed
	}(n)
	wg.Wait()
}
