// Package elsewhere proves the rowmajor check is scoped to /ml
// packages: the same allocations are fine here.
package elsewhere

func freshMatrix(n int) [][]float64 {
	return make([][]float64, n)
}

func literalMatrix() [][]float64 {
	return [][]float64{{1, 2}}
}
