// Package ml is the rowmajor fixture: its directory ends in /ml so the
// path-scoped check treats it like the real kernel package.
package ml

// View mimics tabular.View closely enough for the selector check: the
// analyzer matches the method name on any type whose string ends in
// "tabular.View", so the real method is exercised through the tabular
// import below.
import "repro/internal/tabular"

func transposeBack(v tabular.View) [][]float64 {
	return v.MaterializeRows() // want "reintroduces the per-fit transpose"
}

func freshMatrix(n int) [][]float64 {
	return make([][]float64, n) // want "make\\(\\[\\]\\[\\]float64"
}

func literalMatrix() [][]float64 {
	return [][]float64{{1, 2}, {3, 4}} // want "literal in the columnar ml kernels"
}

func annotated(n int) [][]float64 {
	//greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	return make([][]float64, n)
}

// intMatrix must not trip the float64-specific check.
func intMatrix(n int) [][]int {
	return make([][]int, n)
}
