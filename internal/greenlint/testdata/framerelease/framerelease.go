// Package framerelease is a greenlint golden-file fixture for the
// pooled-frame linear-ownership analyzer: leaks on early error returns,
// double release, use after release, and the two sanctioned ownership
// transfers (return value, //greenlint:owns callee).
package framerelease

import (
	"errors"

	"repro/internal/tabular"
)

var feats = []string{"a", "b"}

func leakOnErrorPath(cond bool) error {
	f := tabular.NewPooledFrame("x", 4, 2) // want "\\[framerelease\\] pooled frame \"f\" may leak"
	if cond {
		return errors.New("early exit skips the release")
	}
	f.Release()
	return nil
}

func releasedOnAllPaths(cond bool) error {
	f := tabular.NewPooledFrame("x", 4, 2)
	if cond {
		f.Release()
		return errors.New("released before the early exit")
	}
	f.Release()
	return nil
}

func deferredReleaseCoversEveryPath(cond bool) error {
	f := tabular.NewPooledFrame("x", 4, 2)
	defer f.Release()
	if cond {
		return errors.New("deferred release still runs here")
	}
	f.Cols[0][0] = 1
	return nil
}

func doubleRelease() {
	f := tabular.NewPooledFrame("x", 4, 2)
	f.Release()
	f.Release() // want "\\[framerelease\\] pooled frame \"f\" may be released twice"
}

func releaseAfterDefer() {
	f := tabular.NewPooledFrame("x", 4, 2)
	defer f.Release()
	f.Release() // want "\\[framerelease\\] pooled frame \"f\" may be released twice"
}

func useAfterRelease() int {
	f := tabular.NewPooledFrame("x", 4, 2)
	f.Release()
	return f.Rows() // want "\\[framerelease\\] pooled frame \"f\" may be used after Release"
}

func transferByReturn() *tabular.Frame {
	f := tabular.NewPooledFrame("x", 4, 2)
	f.Cols[0][0] = 1
	return f // ownership moves to the caller; no finding
}

// callerInheritsObligation pins the call-graph fixpoint: transferByReturn
// is package-local and returns an owned frame, so calling it mints the
// same obligation NewPooledFrame does.
func callerInheritsObligation(cond bool) {
	f := transferByReturn() // want "\\[framerelease\\] pooled frame \"f\" may leak"
	if cond {
		return
	}
	f.Release()
}

// buildView transfers ownership through a view of the owned frame, the
// preprocess.Transform idiom.
func buildView() tabular.View {
	f := tabular.NewPooledFrame("x", 4, 2)
	f.Cols[1][2] = 3
	return f.All() // view of an owned frame: ownership moves with it
}

func viewCallerLeaks(cond bool) tabular.View {
	v := buildView() // want "\\[framerelease\\] pooled frame \"v\" may leak"
	if cond {
		return tabular.View{}
	}
	return v
}

//greenlint:owns sinks the frame into fixture storage and releases it later
func consume(f *tabular.Frame) {
	f.Release()
}

func transferByOwnsAnnotation() {
	f := tabular.NewPooledFrame("x", 4, 2)
	f.Cols[0][0] = 1
	consume(f) // annotated callee takes the obligation; no finding
}

func droppedResult() {
	tabular.NewPooledFrame("x", 4, 2) // want "\\[framerelease\\] owned frame from NewPooledFrame is dropped"
}

func overwriteWhileOwned() {
	f := tabular.NewPooledFrame("x", 4, 2)
	f = tabular.NewPooledFrame("y", 4, 2) // want "\\[framerelease\\] pooled frame \"f\" overwritten while still owned"
	f.Release()
}

func allowedLeak(cond bool) error {
	//greenlint:allow framerelease fixture pins that the check is suppressible
	f := tabular.NewPooledFrame("x", 4, 2)
	if cond {
		return errors.New("tolerated leak")
	}
	f.Release()
	return nil
}

// loopBodyStaysClean pins the no-false-positive contract on the
// preprocess shape: create, fill in a loop, release on every path.
func loopBodyStaysClean(n int) error {
	f := tabular.NewPooledFrame("x", n, 2)
	for j := range f.Cols {
		for i := range f.Cols[j] {
			f.Cols[j][i] = float64(i)
		}
		if n > len(feats) {
			f.Release()
			return errors.New("release inside the loop covers this exit")
		}
	}
	f.Release()
	return nil
}
