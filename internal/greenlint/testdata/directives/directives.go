// Package directives is a greenlint golden-file fixture for the
// suppression machinery itself.
package directives

import "time"

func allowedAbove() time.Time {
	//greenlint:allow wallclock suppressed by a directive on the line above
	return time.Now()
}

func allowedSameLine() time.Time {
	return time.Now() //greenlint:allow wallclock suppressed by a same-line directive
}

func wrongCheckDoesNotSuppress() time.Time {
	//greenlint:allow wraperr a directive for another check must not suppress wallclock // want "\\[unusedallow\\] //greenlint:allow wraperr suppresses nothing here"
	return time.Now() // want "\\[wallclock\\] call to time\\.Now"
}

func tooFarAway() time.Time {
	//greenlint:allow wallclock a directive two lines up is out of range // want "\\[unusedallow\\] //greenlint:allow wallclock suppresses nothing here"

	return time.Now() // want "\\[wallclock\\] call to time\\.Now"
}

//greenlint:allow nosuchcheck pretend reason // want "\\[directive\\] unknown check \"nosuchcheck\""

//greenlint:allow wallclock // want "\\[directive\\] //greenlint:allow wallclock needs a reason"

//greenlint:deny wallclock because // want "\\[directive\\] unknown greenlint directive \"deny\""
