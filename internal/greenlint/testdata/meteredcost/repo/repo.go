// Package repocost is a greenlint golden-file fixture shaped like the
// evaluation repository's simulated-ensemble analyses: a cell lookup
// returns cached prediction probabilities plus the ml.Cost of loading
// and blending them. "The predictions were cached" tempts callers into
// treating the analysis as free — but the lookup, decode and blend are
// real compute, and the whole point of simulating ensembles under the
// meter is that "almost free" is measured, never assumed. Dropping the
// lookup cost on any path is therefore an unmetered-energy bug.
package repocost

import (
	"errors"

	"repro/internal/ml"
)

type simCell struct {
	score  float64
	joules float64
}

// lookupCell stands in for Repository.Get plus slab decode: cached
// probabilities and the cost of materializing them.
func lookupCell(members, rows int) ([][]float64, ml.Cost) {
	return make([][]float64, rows), ml.Cost{Generic: float64(members*rows) * 3}
}

// blend stands in for the Caruana selection loop over cached members.
func blend(probas [][]float64) (float64, ml.Cost) {
	return 0.5, ml.Cost{Generic: float64(len(probas)) * 100}
}

// chargeJoules stands in for metering the simulation's compute.
func chargeJoules(c ml.Cost) float64 {
	return c.Total()
}

// cachedIsNotFree models the core repo-shaped bug: the lookup cost is
// dropped because the predictions "came from the cache" — but decoding
// the slab was real work the simulation must charge.
func cachedIsNotFree(members int) simCell {
	probas, cost := lookupCell(members, 64) // want "\\[meteredcost\\] ml.Cost \"cost\" may go unmetered"
	if len(probas) < 2 {
		// Too few members to ensemble; the lookups still happened.
		return simCell{}
	}
	score, blendCost := blend(probas)
	return simCell{score: score, joules: chargeJoules(cost) + chargeJoules(blendCost)}
}

// discardedLookupCost models a membership probe that throws the cost
// away outright: checking whether a cell is stored still decodes it.
func discardedLookupCost(members int) bool {
	probas, _ := lookupCell(members, 8) // want "\\[meteredcost\\] ml.Cost result of lookupCell is discarded \\(bound to _\\)"
	return len(probas) >= 2
}

// skippedCellDropsBlend models the sparse-store path: a cell with too
// few members skips the blend, and the early return loses the blend
// cost the probe already paid.
func skippedCellDropsBlend(members int) (simCell, error) {
	probas, cost := lookupCell(members, 32)
	joules := chargeJoules(cost)
	score, blendCost := blend(probas) // want "\\[meteredcost\\] ml.Cost \"blendCost\" may go unmetered"
	if score <= 0 {
		return simCell{}, errors.New("degenerate blend")
	}
	return simCell{score: score, joules: joules + chargeJoules(blendCost)}, nil
}

// simulateChargesEveryPath is the simulator's actual shape: every cost
// is converted to joules immediately, before any skip or early return,
// so sparse cells and degenerate blends still meter their lookups.
func simulateChargesEveryPath(members int) simCell {
	probas, cost := lookupCell(members, 64)
	joules := chargeJoules(cost)
	if len(probas) < 2 {
		return simCell{joules: joules}
	}
	score, blendCost := blend(probas)
	joules += chargeJoules(blendCost)
	if score <= 0 {
		return simCell{joules: joules}
	}
	return simCell{score: score, joules: joules}
}
