// Package servecost is a greenlint golden-file fixture shaped like the
// inference-serving layer's resolve paths: a micro-batch predict
// returns an ml.Cost, and the refusal taxonomy (shed, expired,
// degraded) gives the cost several early exits to slip through. Every
// refusal still consumed the predict compute, so dropping the cost on
// any of those paths is an unmetered-energy bug — exactly what the
// conservation invariant of the serving ledger forbids.
package servecost

import (
	"errors"

	"repro/internal/ml"
)

type response struct {
	outcome string
	joules  float64
}

// predictBatch stands in for Predictor.PredictProba on a columnar
// block: probabilities plus the compute spent producing them.
func predictBatch(rows int) ([][]float64, ml.Cost) {
	return make([][]float64, rows), ml.Cost{Generic: float64(rows) * 2000}
}

// chargeJoules stands in for the tracker side of resolve().
func chargeJoules(c ml.Cost) float64 {
	return c.Total()
}

// expiredPathDropsCost models the bug the serve chaos suite pins: the
// batch ran, a deadline expired before resolution, and the expired
// early-return abandons the cost without charging it.
func expiredPathDropsCost(deadlineExpired bool) response {
	proba, cost := predictBatch(8) // want "\\[meteredcost\\] ml.Cost \"cost\" may go unmetered"
	if deadlineExpired {
		// Expired work was still computed; returning here loses it.
		return response{outcome: "expired"}
	}
	_ = proba
	return response{outcome: "served", joules: chargeJoules(cost)}
}

// degradedFallbackDiscards models a breaker fallback that throws away
// the probe batch's cost: the fallback answer is cheap, but the probe
// compute already happened.
func degradedFallbackDiscards(breakerOpen bool) response {
	if breakerOpen {
		proba, _ := predictBatch(1) // want "\\[meteredcost\\] ml.Cost result of predictBatch is discarded \\(bound to _\\)"
		_ = proba
		return response{outcome: "degraded"}
	}
	return response{outcome: "served"}
}

// panicRecoveryDropsCost models a recover branch that abandons the
// partial batch cost: the panicking predict still burned its FLOPs.
func panicRecoveryDropsCost() (resp response, err error) {
	proba, cost := predictBatch(4) // want "\\[meteredcost\\] ml.Cost \"cost\" may go unmetered"
	if len(proba) == 0 {
		return response{}, errors.New("predict failed")
	}
	return response{outcome: "served", joules: chargeJoules(cost)}, nil
}

// shedBeforePredict is compliant: a request refused at admission never
// reached predict, so there is no cost obligation to discharge.
func shedBeforePredict(queueFull bool) response {
	if queueFull {
		return response{outcome: "shed"}
	}
	_, cost := predictBatch(1)
	return response{outcome: "served", joules: chargeJoules(cost)}
}

// resolveChargesEveryOutcome is the engine's actual shape: the cost is
// converted to joules once, before the outcome branch, so served,
// expired and failed all charge the same batch compute.
func resolveChargesEveryOutcome(deadlineExpired, panicked bool) response {
	_, cost := predictBatch(8)
	joules := chargeJoules(cost)
	switch {
	case panicked:
		return response{outcome: "failed", joules: joules}
	case deadlineExpired:
		return response{outcome: "expired", joules: joules}
	default:
		return response{outcome: "served", joules: joules}
	}
}

// timeoutTruncatesButStillCharges is compliant: the abandoned batch's
// cost is read to bound the charge even though its answer is discarded.
func timeoutTruncatesButStillCharges(timeout float64) response {
	proba, cost := predictBatch(8)
	burned := cost.Total()
	if burned > timeout {
		return response{outcome: "failed", joules: timeout}
	}
	_ = proba
	return response{outcome: "served", joules: burned}
}
