// Package meteredcost is a greenlint golden-file fixture for the
// energy-accounting completeness analyzer: discarded costs, costs that
// miss the meter on early error paths, and the sanctioned ways of
// discharging the obligation (charge, accumulate, return).
package meteredcost

import (
	"errors"

	"repro/internal/ml"
)

// fitOne stands in for an ml fit entry point: it returns the compute it
// spent as an ml.Cost.
func fitOne() ml.Cost {
	return ml.Cost{Generic: 1}
}

// fitChecked is the common (Cost, error) shape of Fit.
func fitChecked(fail bool) (ml.Cost, error) {
	if fail {
		return ml.Cost{}, errors.New("fit failed")
	}
	return ml.Cost{Tree: 1}, nil
}

// charge stands in for the energy.Meter side of the contract.
func charge(c ml.Cost) {
	_ = c.Total()
}

func bareCallDiscards() {
	fitOne() // want "\\[meteredcost\\] ml.Cost result of fitOne is discarded"
}

func blankBindingDiscards() {
	_ = fitOne() // want "\\[meteredcost\\] ml.Cost result of fitOne is discarded \\(bound to _\\)"
}

func blankInTupleDiscards() {
	_, err := fitChecked(false) // want "\\[meteredcost\\] ml.Cost result of fitChecked is discarded \\(bound to _\\)"
	_ = err
}

func launderedThroughBlank() {
	c := fitOne()
	_ = c // want "\\[meteredcost\\] ml.Cost \"c\" is explicitly discarded"
}

func earlyReturnSkipsCharge(fail bool) error {
	c, err := fitChecked(fail) // want "\\[meteredcost\\] ml.Cost \"c\" may go unmetered"
	if err != nil {
		return err // c never reaches the meter on this path
	}
	charge(c)
	return nil
}

func chargedBeforeEveryExit(fail bool) error {
	c, err := fitChecked(fail)
	charge(c) // charging before the branch covers both exits
	if err != nil {
		return err
	}
	return nil
}

func accumulated() ml.Cost {
	var total ml.Cost
	c := fitOne()
	total.Add(c) // folding into an accumulator discharges c
	return total
}

func returnedToCaller() (ml.Cost, error) {
	return fitChecked(false) // the caller inherits the obligation
}

func overwrittenWhileUncharged() {
	c := fitOne()
	c = fitOne() // want "\\[meteredcost\\] ml.Cost \"c\" overwritten while still uncharged"
	charge(c)
}

func allowedDiscard() {
	fitOne() //greenlint:allow meteredcost fixture pins that the check is suppressible
}
