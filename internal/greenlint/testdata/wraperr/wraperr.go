// Package wraperr is a greenlint golden-file fixture.
package wraperr

import (
	"errors"
	"fmt"
)

var errBase = errors.New("base")

func badVerbV(err error) error {
	return fmt.Errorf("loading spec: %v", err) // want "\\[wraperr\\] fmt\\.Errorf formats error err with %v"
}

func badVerbS() error {
	return fmt.Errorf("stage %d: %s", 3, errBase) // want "\\[wraperr\\] fmt\\.Errorf formats error errBase with %s"
}

func badIndexed(err error) error {
	return fmt.Errorf("%[2]d attempts: %[1]v", err, 7) // want "\\[wraperr\\] fmt\\.Errorf formats error err with %v"
}

func goodWrap(err error) error {
	return fmt.Errorf("loading spec: %w", err)
}

func goodNonError() error {
	return fmt.Errorf("bad value: %v (want %s)", 42, "positive")
}

func goodStarWidth(err error) error {
	return fmt.Errorf("%*d tries: %w", 4, 9, err)
}

func allowed(err error) string {
	//greenlint:allow wraperr rendered for display only, never unwrapped
	return fmt.Errorf("display: %v", err).Error()
}
