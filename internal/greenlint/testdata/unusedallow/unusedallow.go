// Package unusedallow is a greenlint golden-file fixture for the
// stale-suppression audit: an allow that suppresses a live finding is
// fine, an allow that suppresses nothing is itself a finding, and the
// audit's own findings are suppressible.
package unusedallow

import "time"

func liveSuppression() time.Time {
	//greenlint:allow wallclock fixture exercises a directive that still earns its keep
	return time.Now()
}

//greenlint:allow wallclock nothing below reads the clock anymore // want "\\[unusedallow\\] //greenlint:allow wallclock suppresses nothing here"
func staleSuppression() int {
	return 42
}

func staleOnItsOwnLine() int {
	x := 7
	//greenlint:allow maporder this loop was deleted two refactors ago // want "\\[unusedallow\\] //greenlint:allow maporder suppresses nothing here"
	return x
}

//greenlint:allow unusedallow fixture pins that the audit itself is suppressible
//greenlint:allow wallclock stale but explicitly tolerated during a migration
func toleratedStaleness() int {
	return 7
}
