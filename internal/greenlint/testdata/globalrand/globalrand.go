// Package globalrand is a greenlint golden-file fixture. Its import
// path sits under internal/, which is the scope the check applies to.
package globalrand

import (
	"math/rand" // want "\\[globalrand\\] import of math/rand \\(v1\\)"

	randv2 "math/rand/v2"
)

func badV1() int {
	return rand.Int()
}

func badGlobalV2() int {
	return randv2.IntN(10) // want "\\[globalrand\\] rand\\.IntN draws from the process-global generator"
}

func badGlobalPerm() []int {
	return randv2.Perm(4) // want "\\[globalrand\\] rand\\.Perm draws from the process-global generator"
}

func seeded() int {
	r := randv2.New(randv2.NewPCG(1, 2))
	return r.IntN(10)
}

func allowed() float64 {
	//greenlint:allow globalrand fixture demonstrating an annotated exemption
	return randv2.Float64()
}
