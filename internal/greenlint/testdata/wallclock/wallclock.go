// Package wallclock is a greenlint golden-file fixture.
package wallclock

import (
	"time"

	stdtime "time"
)

func bad() time.Duration {
	start := time.Now()              // want "\\[wallclock\\] call to time\\.Now"
	time.Sleep(5 * time.Millisecond) // want "\\[wallclock\\] call to time\\.Sleep"
	return time.Since(start)         // want "\\[wallclock\\] call to time\\.Since"
}

func aliased() stdtime.Time {
	return stdtime.Now() // want "\\[wallclock\\] call to time\\.Now"
}

func fine() time.Duration {
	t := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	_ = t.Add(time.Hour)
	return 3 * time.Second
}

func allowed() time.Time {
	//greenlint:allow wallclock operator-facing progress line, not a measured quantity
	return time.Now()
}
