// Package wallclock is a greenlint golden-file fixture.
package wallclock

import (
	"time"

	stdtime "time"
)

func bad() time.Duration {
	start := time.Now()              // want "\\[wallclock\\] call to time\\.Now"
	time.Sleep(5 * time.Millisecond) // want "\\[wallclock\\] call to time\\.Sleep"
	return time.Since(start)         // want "\\[wallclock\\] call to time\\.Since"
}

func aliased() stdtime.Time {
	return stdtime.Now() // want "\\[wallclock\\] call to time\\.Now"
}

func fine() time.Duration {
	t := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	_ = t.Add(time.Hour)
	return 3 * time.Second
}

func allowed() time.Time {
	//greenlint:allow wallclock operator-facing progress line, not a measured quantity
	return time.Now()
}

func timers() {
	<-time.After(time.Millisecond)           // want "\\[wallclock\\] call to time\\.After arms a wall-clock timer"
	_ = time.NewTimer(time.Millisecond)      // want "\\[wallclock\\] call to time\\.NewTimer arms a wall-clock timer"
	_ = time.NewTicker(time.Millisecond)     // want "\\[wallclock\\] call to time\\.NewTicker arms a wall-clock timer"
	_ = time.Tick(time.Millisecond)          // want "\\[wallclock\\] call to time\\.Tick arms a wall-clock timer"
	_ = time.AfterFunc(time.Hour, func() {}) // want "\\[wallclock\\] call to time\\.AfterFunc arms a wall-clock timer"
}

// watchdogTimer pins the one sanctioned timer idiom: the scheduler's
// stall watchdog probes real time to notice cells whose VIRTUAL clock
// stopped advancing. The annotation pattern below is the exact shape
// internal/bench/scheduler.go uses; keep them in sync.
func watchdogTimer(probe time.Duration) {
	//greenlint:allow wallclock watchdog probe timer is operator-facing real time; stall decisions depend only on virtual progress
	ticker := time.NewTicker(probe)
	defer ticker.Stop()
	<-ticker.C
}
