// Package hotalloc is a greenlint golden-file fixture for the hot-path
// allocation analyzer: allocation-bearing constructs inside functions
// annotated //greenlint:hotpath, propagation to package-local callees,
// and the allow escape hatch.
package hotalloc

type point struct{ x, y float64 }

//greenlint:hotpath fixture kernel must stay allocation-free
func kernel(dst, xs []float64) float64 {
	buf := make([]float64, 4) // want "\\[hotalloc\\] make allocates on a hot path"
	s := 0.0
	for _, x := range xs {
		s += x
	}
	helper(dst)
	_ = buf
	return s
}

// helper is hot only by propagation from kernel; the finding names the
// root annotation.
func helper(dst []float64) {
	tmp := new(float64) // want "\\[hotalloc\\] new allocates on a hot path \\(hot via kernel\\)"
	dst[0] = *tmp
}

//greenlint:hotpath growth must be presized
func grower(dst []float64, x float64) []float64 {
	return append(dst, x) // want "\\[hotalloc\\] append may grow \\(allocate\\) on a hot path"
}

//greenlint:hotpath closure environments allocate
func closures(xs []float64) func() float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	f := func() float64 { return total } // want "\\[hotalloc\\] capturing closure allocates its environment on a hot path"
	return f
}

//greenlint:hotpath literals with reference backing allocate
func literals() []float64 {
	p := &point{x: 1} // want "\\[hotalloc\\] &composite literal escapes to the heap on a hot path"
	q := point{y: 2}  // plain struct value literal stays on the stack: no finding
	_ = q
	_ = p
	return []float64{1, 2} // want "\\[hotalloc\\] slice literal allocates on a hot path"
}

//greenlint:hotpath interfaces box concrete values
func boxer(vals []int) any {
	var a any
	a = vals[0] // want "\\[hotalloc\\] assignment boxes a concrete value into an interface on a hot path"
	_ = a
	sinkAny(vals[0]) // want "\\[hotalloc\\] argument boxes a concrete value into an interface on a hot path"
	sinkAny(&vals[0])
	return vals[0] // want "\\[hotalloc\\] return boxes a concrete value into an interface on a hot path"
}

// sinkAny is hot via boxer; pointers fit the interface word, so calling
// it with &vals[0] above is allocation-free.
func sinkAny(x any) {
	_ = x
}

//greenlint:hotpath string conversions copy
func stringify(b []byte) string {
	return string(b) // want "\\[hotalloc\\] string/slice conversion copies on a hot path"
}

//greenlint:hotpath the allow escape hatch still works here
func allowedGrow(dst []byte, b byte) []byte {
	//greenlint:allow hotalloc amortized doubling behind a caller-side cap check
	return append(dst, b)
}

// coldPath is unannotated and unreachable from any hot root: it may
// allocate freely.
func coldPath(n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, float64(i))
	}
	return out
}
