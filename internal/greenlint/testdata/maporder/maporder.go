// Package maporder is a greenlint golden-file fixture.
package maporder

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

func emitUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "\\[maporder\\] write to io\\.Writer argument w inside range over a map"
	}
}

func buildUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "\\[maporder\\] slice \"out\" is built from a map range and never sorted"
	}
	return out
}

func builderUnsorted(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want "\\[maporder\\] write to sb inside range over a map"
	}
	return sb.String()
}

// csv.Writer.Write takes []string, not []byte, so it is not an
// io.Writer — the Write*-name heuristic must catch it anyway.
func emitCSVUnsorted(cw *csv.Writer, m map[string]string) {
	for k, v := range m {
		_ = cw.Write([]string{k, v}) // want "\\[maporder\\] write to cw\\.Write inside range over a map"
	}
}

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectThenSortSlice(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func loopLocalScratch(m map[string][]float64) float64 {
	var total float64
	for _, runs := range m {
		scratch := make([]float64, 0, len(runs))
		scratch = append(scratch, runs...)
		total += float64(len(scratch))
	}
	return total
}

func deferredClosure(m map[string]int) func() []string {
	var out []string
	for k := range m {
		f := func() { out = append(out, k) }
		_ = f
	}
	return func() []string { sort.Strings(out); return out }
}

func allowed(w io.Writer, m map[string]int) {
	for k := range m {
		//greenlint:allow maporder fixture demonstrating an annotated exemption
		fmt.Fprintln(w, k)
	}
}
