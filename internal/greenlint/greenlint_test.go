package greenlint

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// lintFixture loads one testdata package and returns its findings plus
// the parsed packages (for expectation extraction).
func lintFixture(t *testing.T, name string) ([]Finding, []*Package, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := Load(fset, []string{filepath.Join("testdata", name)})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", name)
	}
	var findings []Finding
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s: type error: %v", name, terr)
		}
		findings = append(findings, LintPackage(fset, pkg)...)
	}
	SortFindings(findings)
	return findings, pkgs, fset
}

// expectation is one `// want "regexp"` comment, keyed by file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
}

// collectWants extracts every `// want "..."` expectation from the
// fixture's comments. Several quoted patterns after one `// want`
// expect that many findings on the line, in column order.
func collectWants(t *testing.T, pkgs []*Package, fset *token.FileSet) []expectation {
	t.Helper()
	var wants []expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := fset.Position(c.Pos())
					rest := strings.TrimSpace(c.Text[idx+len("// want "):])
					for rest != "" {
						q, err := strconv.QuotedPrefix(rest)
						if err != nil {
							t.Fatalf("%s:%d: malformed want pattern %q: %v", pos.Filename, pos.Line, rest, err)
						}
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: unquoting %q: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: compiling want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
						rest = strings.TrimSpace(rest[len(q):])
					}
				}
			}
		}
	}
	return wants
}

// checkFixture asserts findings and expectations match exactly: every
// want matched by the finding at its line (in column order), no
// unmatched findings, no unmatched wants.
func checkFixture(t *testing.T, name string) []Finding {
	t.Helper()
	findings, pkgs, fset := lintFixture(t, name)
	wants := collectWants(t, pkgs, fset)

	type lineKey struct {
		file string
		line int
	}
	wantsAt := make(map[lineKey][]expectation)
	for _, w := range wants {
		wantsAt[lineKey{w.file, w.line}] = append(wantsAt[lineKey{w.file, w.line}], w)
	}
	foundAt := make(map[lineKey][]Finding)
	for _, f := range findings {
		foundAt[lineKey{f.Pos.Filename, f.Pos.Line}] = append(foundAt[lineKey{f.Pos.Filename, f.Pos.Line}], f)
	}

	for key, ws := range wantsAt {
		fs := foundAt[key]
		if len(fs) != len(ws) {
			t.Errorf("%s:%d: %d finding(s), want %d", key.file, key.line, len(fs), len(ws))
			continue
		}
		for i, w := range ws {
			if !w.re.MatchString(fs[i].Tag()) {
				t.Errorf("%s:%d: finding %q does not match want %q", key.file, key.line, fs[i].Tag(), w.raw)
			}
		}
	}
	for key, fs := range foundAt {
		if _, ok := wantsAt[key]; !ok {
			for _, f := range fs {
				t.Errorf("%s:%d: unexpected finding %q", key.file, key.line, f.Tag())
			}
		}
	}
	return findings
}

func TestWallclockFixture(t *testing.T) {
	findings := checkFixture(t, "wallclock")
	if len(findings) == 0 {
		t.Fatal("wallclock fixture produced no findings; the CI gate would pass vacuously")
	}
}

func TestGlobalRandFixture(t *testing.T) {
	findings := checkFixture(t, "globalrand")
	if len(findings) == 0 {
		t.Fatal("globalrand fixture produced no findings; the CI gate would pass vacuously")
	}
}

func TestMapOrderFixture(t *testing.T) {
	findings := checkFixture(t, "maporder")
	if len(findings) == 0 {
		t.Fatal("maporder fixture produced no findings; the CI gate would pass vacuously")
	}
}

func TestWrapErrFixture(t *testing.T) {
	findings := checkFixture(t, "wraperr")
	if len(findings) == 0 {
		t.Fatal("wraperr fixture produced no findings; the CI gate would pass vacuously")
	}
}

func TestRowMajorFixture(t *testing.T) {
	findings := checkFixture(t, filepath.Join("rowmajor", "ml"))
	if len(findings) == 0 {
		t.Fatal("rowmajor fixture produced no findings; the CI gate would pass vacuously")
	}
}

// TestRowMajorScopedToML pins the path scoping: the identical code
// outside a /ml package must produce no findings, so the check cannot
// leak into packages that legitimately traffic in row-major data
// (stacked meta-features, export tables).
func TestRowMajorScopedToML(t *testing.T) {
	findings, _, _ := lintFixture(t, filepath.Join("rowmajor", "elsewhere"))
	for _, f := range findings {
		if f.Check == "rowmajor" {
			t.Errorf("rowmajor fired outside internal/ml: %s", f)
		}
	}
}

func TestReduceOrderFixture(t *testing.T) {
	findings := checkFixture(t, filepath.Join("reduceorder", "ml"))
	if len(findings) == 0 {
		t.Fatal("reduceorder fixture produced no findings; the CI gate would pass vacuously")
	}
}

// TestReduceOrderScopedToML pins the path scoping: goroutines with
// mutex-guarded accumulators outside /ml packages (the bench
// scheduler's idiom) must produce no findings.
func TestReduceOrderScopedToML(t *testing.T) {
	findings, _, _ := lintFixture(t, filepath.Join("reduceorder", "elsewhere"))
	for _, f := range findings {
		if f.Check == "reduceorder" {
			t.Errorf("reduceorder fired outside internal/ml: %s", f)
		}
	}
}

func TestFrameReleaseFixture(t *testing.T) {
	findings := checkFixture(t, "framerelease")
	if len(findings) == 0 {
		t.Fatal("framerelease fixture produced no findings; the CI gate would pass vacuously")
	}
}

func TestMeteredCostFixture(t *testing.T) {
	findings := checkFixture(t, "meteredcost")
	if len(findings) == 0 {
		t.Fatal("meteredcost fixture produced no findings; the CI gate would pass vacuously")
	}
}

// TestMeteredCostServeFixture covers the serving-shaped resolve paths:
// refusal outcomes (shed, expired, degraded) that return early must not
// drop the predict batch's ml.Cost — an expired or degraded request
// still consumed its compute, and the serve ledger's conservation
// invariant depends on every path charging.
func TestMeteredCostServeFixture(t *testing.T) {
	findings := checkFixture(t, filepath.Join("meteredcost", "serve"))
	if len(findings) == 0 {
		t.Fatal("meteredcost serve fixture produced no findings; the CI gate would pass vacuously")
	}
}

// TestMeteredCostRepoFixture covers the evaluation-repository-shaped
// paths: simulated-ensemble analyses load cached predictions, and
// "cached" tempts callers into dropping the lookup and blend ml.Cost.
// The simulation's claim — tiny but measured energy — collapses if any
// path skips metering, so the check must catch repo-shaped drops.
func TestMeteredCostRepoFixture(t *testing.T) {
	findings := checkFixture(t, filepath.Join("meteredcost", "repo"))
	if len(findings) == 0 {
		t.Fatal("meteredcost repo fixture produced no findings; the CI gate would pass vacuously")
	}
}

func TestHotAllocFixture(t *testing.T) {
	findings := checkFixture(t, "hotalloc")
	if len(findings) == 0 {
		t.Fatal("hotalloc fixture produced no findings; the CI gate would pass vacuously")
	}
}

func TestUnusedAllowFixture(t *testing.T) {
	findings := checkFixture(t, "unusedallow")
	if len(findings) == 0 {
		t.Fatal("unusedallow fixture produced no findings; the CI gate would pass vacuously")
	}
}

// TestDirectivesFixture covers the suppression machinery: allow
// directives on the same line and the line above suppress, directives
// for another check or further away do not, and malformed directives
// (unknown check, missing reason, unknown verb) are findings in their
// own right.
func TestDirectivesFixture(t *testing.T) {
	findings := checkFixture(t, "directives")
	var directiveErrs int
	for _, f := range findings {
		if f.Check == DirectiveCheck {
			directiveErrs++
		}
	}
	if directiveErrs != 3 {
		t.Errorf("directives fixture produced %d [directive] findings, want 3 (unknown check, missing reason, unknown verb)", directiveErrs)
	}
}

// TestFindingFormat pins the output contract the CI job and editors
// parse: file:line: [check] message.
func TestFindingFormat(t *testing.T) {
	f := Finding{Check: "wallclock", Msg: "call to time.Now"}
	f.Pos.Filename = "internal/bench/export.go"
	f.Pos.Line = 42
	if got, want := f.String(), "internal/bench/export.go:42: [wallclock] call to time.Now"; got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

// TestVerbParsing pins the fmt-format scanner wraperr depends on.
func TestVerbParsing(t *testing.T) {
	cases := []struct {
		format string
		want   []verbUse
	}{
		{"plain", nil},
		{"%v", []verbUse{{'v', 1}}},
		{"%d then %s", []verbUse{{'d', 1}, {'s', 2}}},
		{"100%% done %w", []verbUse{{'w', 1}}},
		{"%*d %v", []verbUse{{'d', 2}, {'v', 3}}},
		{"%-8.3f %+q", []verbUse{{'f', 1}, {'q', 2}}},
		{"%[2]v %[1]s", []verbUse{{'v', 2}, {'s', 1}}},
	}
	for _, c := range cases {
		got := parseVerbs(c.format)
		if len(got) != len(c.want) {
			t.Errorf("parseVerbs(%q) = %v, want %v", c.format, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseVerbs(%q)[%d] = %v, want %v", c.format, i, got[i], c.want[i])
			}
		}
	}
}
