package greenlint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// WrapErr rejects fmt.Errorf calls that format an error-typed argument
// with %v or %s. The resilience layer's failure taxonomy (PR 1) is
// errors.Is/errors.As over wrapped *faults.Error values; %v flattens
// the chain to text and every taxonomy probe above it silently reports
// "no failure". %w is the only verb that preserves the chain.
var WrapErr = &Analyzer{
	Name: "wraperr",
	Doc:  "forbid fmt.Errorf passing an error through %v/%s instead of %w",
	Run: func(p *Pass) {
		errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) < 2 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Errorf" || p.pkgPathOf(sel.X) != "fmt" {
					return true
				}
				format, ok := p.constString(call.Args[0])
				if !ok {
					return true
				}
				for _, use := range parseVerbs(format) {
					argIdx := use.operand // operand k is call.Args[k]: args[0] is the format
					if use.verb != 'v' && use.verb != 's' {
						continue
					}
					if argIdx < 1 || argIdx >= len(call.Args) {
						continue
					}
					t := p.typeOf(call.Args[argIdx])
					if t == nil || !types.Implements(t, errType) {
						continue
					}
					p.Reportf(call.Args[argIdx].Pos(),
						"fmt.Errorf formats error %s with %%%c, which flattens the chain; use %%w so errors.Is/errors.As keep working",
						exprString(call.Args[argIdx]), use.verb)
				}
				return true
			})
		}
	},
}

// constString resolves expr to a compile-time string (literal or
// constant), which is the only case the verb scanner can reason about.
func (p *Pass) constString(expr ast.Expr) (string, bool) {
	tv, ok := p.Pkg.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

type verbUse struct {
	verb    rune
	operand int // 1-based operand index == index into the Errorf call's args
}

// parseVerbs scans a fmt format string and maps each verb to the
// operand it consumes, following fmt's rules for flags, *-widths, and
// explicit [n] argument indexes.
func parseVerbs(format string) []verbUse {
	var out []verbUse
	next := 1
	runes := []rune(format)
	for i := 0; i < len(runes); i++ {
		if runes[i] != '%' {
			continue
		}
		i++
		if i >= len(runes) {
			break
		}
		if runes[i] == '%' {
			continue
		}
		// Flags, width, precision; each * consumes one operand.
		for i < len(runes) {
			c := runes[i]
			if c == '*' {
				next++
				i++
				continue
			}
			if c == '[' {
				j := i + 1
				idx := 0
				for j < len(runes) && runes[j] >= '0' && runes[j] <= '9' {
					idx = idx*10 + int(runes[j]-'0')
					j++
				}
				if j < len(runes) && runes[j] == ']' && idx > 0 {
					next = idx
					i = j + 1
					continue
				}
				break
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(runes) {
			break
		}
		out = append(out, verbUse{verb: runes[i], operand: next})
		next++
	}
	return out
}
