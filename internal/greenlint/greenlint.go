// Package greenlint is the project's determinism and energy-accounting
// static-analysis suite. The benchmark harness promises byte-identical
// records, exports, and figures at any worker count, and bit-identical
// virtual-clock energy across refactors; that guarantee dies by a
// thousand nondeterminism cuts — a stray wall-clock read, a global RNG
// draw, an unsorted map iteration feeding an export. greenlint rejects
// those cuts at review time instead of waiting for a regression test to
// notice the bytes changed.
//
// Ten analyzers run over every package:
//
//   - wallclock: no time.Now/time.Since/time.Sleep — measured code must
//     go through internal/vclock and internal/energy.
//   - globalrand: in internal/... no math/rand (v1) and no source-less
//     math/rand/v2 top-level functions — every RNG stream must be
//     explicitly seeded, because determinism derives from cell identity.
//   - maporder: no range over a map that emits in iteration order
//     (writes to an io.Writer, or builds a slice that is never sorted).
//   - wraperr: no fmt.Errorf that passes an error through %v/%s — use
//     %w so the errors.Is-based failure taxonomy keeps working.
//   - rowmajor: in internal/ml no unannotated [][]float64 allocation and
//     no View.MaterializeRows — the kernels are columnar; a row-major
//     feature matrix is the per-fit transpose regression coming back.
//   - reduceorder: in internal/ml no unannotated goroutine launch and no
//     write to a captured variable from inside one — shared accumulators
//     make float reduction order (and the output bits) depend on
//     scheduling; the sanctioned pattern is item-addressed slots reduced
//     on the caller in slot order.
//   - framerelease: CFG/dataflow linear-ownership check — a pooled frame
//     from tabular.NewPooledFrame must reach Release on every path
//     (early error returns included), exactly once, unless ownership is
//     transferred by returning it or passing it to a //greenlint:owns
//     function.
//   - meteredcost: energy-accounting completeness — an ml.Cost returned
//     by fit/predict compute must be charged, accumulated, or returned
//     on every path; no compute path is free.
//   - hotalloc: functions annotated //greenlint:hotpath, and their
//     package-local callees, must not contain allocation-bearing
//     constructs (make/new, slice/map literals, append, capturing
//     closures, interface boxing).
//   - unusedallow: //greenlint:allow directives that suppress nothing
//     are themselves findings, so annotation debt cannot rot in place.
//
// Legitimate exceptions are annotated in the source, never silently
// exempted:
//
//	//greenlint:allow <check> <reason>
//
// A directive suppresses findings for <check> on its own line and on
// the line immediately below it (so it can sit on the offending line or
// on its own line just above). The reason is mandatory, and a directive
// naming an unknown check is itself a finding — a typo must not turn
// into a silent exemption. Two further verbs attach to function
// declarations (doc comment or the line directly above `func`) and are
// grants rather than suppressions:
//
//	//greenlint:owns <reason>     — takes ownership of frame arguments
//	//greenlint:hotpath <reason>  — must stay allocation-free
package greenlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer hit, rendered as "file:line: [check] message".
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}

// Tag renders the check-qualified message without the position — the
// form golden-test expectations match against.
func (f Finding) Tag() string {
	return fmt.Sprintf("[%s] %s", f.Check, f.Msg)
}

// An Analyzer is one named check over a loaded, type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers is the full suite, in the order findings are attributed.
var Analyzers = []*Analyzer{Wallclock, GlobalRand, MapOrder, WrapErr, RowMajor, ReduceOrder, FrameRelease, MeteredCost, HotAlloc, UnusedAllow}

// UnusedAllow reports //greenlint:allow directives that suppress no
// finding. It has no Run of its own: usedness falls out of the
// suppression bookkeeping in lintPackage, after every enabled analyzer
// has reported. An allow is audited only when its check actually ran
// (under -checks filtering a skipped check's allows are unjudgeable),
// and `allow unusedallow` directives are exempt — a directive cannot
// meaningfully vouch for itself.
var UnusedAllow = &Analyzer{
	Name: "unusedallow",
	Doc:  "//greenlint:allow directives must suppress at least one finding; stale ones are annotation debt and get deleted",
	Run:  func(*Pass) {},
}

// DirectiveCheck is the pseudo-check name under which malformed
// //greenlint: directives are reported.
const DirectiveCheck = "directive"

func knownCheck(name string) bool {
	for _, a := range Analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset    *token.FileSet
	Pkg     *Package
	current *Analyzer
	report  func(Finding)
}

// Reportf records a finding for the running analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:   p.Fset.Position(pos),
		Check: p.current.Name,
		Msg:   fmt.Sprintf(format, args...),
	})
}

// pkgPathOf resolves expr to an imported package path when expr is the
// package-name operand of a selector (e.g. the `time` in time.Now), or
// "" otherwise. It goes through go/types so import aliases are handled.
func (p *Pass) pkgPathOf(expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// typeOf is Info.TypeOf, tolerating expressions the checker never saw.
func (p *Pass) typeOf(expr ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(expr)
}

// directive is one parsed //greenlint: comment.
type directive struct {
	pos    token.Position
	verb   string // allow, owns, or hotpath
	check  string // allow only; owns/hotpath take no check name
	reason string
}

// parseDirectives extracts every //greenlint: comment in the package.
// Golden-test fixtures put `// want "..."` expectations on directive
// lines too, so anything from "// want" onward is not part of the
// reason.
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//greenlint:")
				if !ok {
					continue
				}
				if i := strings.Index(text, "// want"); i >= 0 {
					text = text[:i]
				}
				fields := strings.Fields(text)
				d := directive{pos: fset.Position(c.Pos())}
				if len(fields) > 0 {
					d.verb = fields[0]
				}
				if d.verb == "owns" || d.verb == "hotpath" {
					// Function-level grants: everything after the verb
					// is the reason; there is no check operand.
					if len(fields) > 1 {
						d.reason = strings.Join(fields[1:], " ")
					}
				} else {
					if len(fields) > 1 {
						d.check = fields[1]
					}
					if len(fields) > 2 {
						d.reason = strings.Join(fields[2:], " ")
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// validateDirectives turns malformed directives into findings: an
// unknown verb, an unknown check name, a missing reason, or an
// owns/hotpath grant that attaches to no function declaration must fail
// the build rather than silently suppress (or grant) nothing — or the
// wrong thing. dangling holds the positions of owns/hotpath directives
// funcDirectives could not attach.
func validateDirectives(dirs []directive, dangling map[token.Position]bool) []Finding {
	var out []Finding
	for _, d := range dirs {
		switch d.verb {
		case "allow":
			switch {
			case !knownCheck(d.check):
				out = append(out, Finding{Pos: d.pos, Check: DirectiveCheck,
					Msg: fmt.Sprintf("unknown check %q in //greenlint:allow (known checks: %s)", d.check, strings.Join(checkNames(), ", "))})
			case d.reason == "":
				out = append(out, Finding{Pos: d.pos, Check: DirectiveCheck,
					Msg: fmt.Sprintf("//greenlint:allow %s needs a reason — say why this site is exempt", d.check)})
			}
		case "owns", "hotpath":
			switch {
			case d.reason == "":
				out = append(out, Finding{Pos: d.pos, Check: DirectiveCheck,
					Msg: fmt.Sprintf("//greenlint:%s needs a reason — say why this function holds the contract", d.verb)})
			case dangling[d.pos]:
				out = append(out, Finding{Pos: d.pos, Check: DirectiveCheck,
					Msg: fmt.Sprintf("//greenlint:%s attaches to no function declaration; put it in the doc comment or on the line directly above func", d.verb)})
			}
		default:
			out = append(out, Finding{Pos: d.pos, Check: DirectiveCheck,
				Msg: fmt.Sprintf("unknown greenlint directive %q (supported: allow <check> <reason>, owns <reason>, hotpath <reason>)", d.verb)})
		}
	}
	return out
}

func checkNames() []string {
	names := make([]string, len(Analyzers))
	for i, a := range Analyzers {
		names[i] = a.Name
	}
	return names
}

// suppressorOf returns the index of the well-formed allow directive
// covering the finding — same file, matching check, on the finding's
// line or the line directly above it — or -1. A same-line directive
// wins over a line-above one, so that stacked annotations on adjacent
// lines each get credited with their own finding (the unusedallow audit
// counts credits; first-match-in-window would starve the second
// directive of a pair and flag it as stale).
func suppressorOf(f Finding, dirs []directive) int {
	lineAbove := -1
	for i, d := range dirs {
		if d.verb != "allow" || d.check != f.Check || d.reason == "" {
			continue
		}
		if d.pos.Filename != f.Pos.Filename {
			continue
		}
		if d.pos.Line == f.Pos.Line {
			return i
		}
		if d.pos.Line+1 == f.Pos.Line && lineAbove < 0 {
			lineAbove = i
		}
	}
	return lineAbove
}

// LintPackage runs the whole suite over one loaded package and returns
// the surviving findings (directive errors included, suppressions
// applied).
func LintPackage(fset *token.FileSet, pkg *Package) []Finding {
	return lintPackage(fset, pkg, nil)
}

// lintPackage runs the enabled subset of the suite (nil = all checks)
// and applies the directive machinery: suppression, directive
// validation, and the unusedallow audit over the suppression ledger.
func lintPackage(fset *token.FileSet, pkg *Package, enabled map[string]bool) []Finding {
	on := func(name string) bool { return enabled == nil || enabled[name] }
	var raw []Finding
	pass := &Pass{Fset: fset, Pkg: pkg, report: func(f Finding) { raw = append(raw, f) }}
	for _, a := range Analyzers {
		if !on(a.Name) {
			continue
		}
		pass.current = a
		a.Run(pass)
	}
	dirs := parseDirectives(fset, pkg.Files)
	used := make([]bool, len(dirs))
	var out []Finding
	for _, f := range raw {
		if i := suppressorOf(f, dirs); i >= 0 {
			used[i] = true
			continue
		}
		out = append(out, f)
	}
	if on(UnusedAllow.Name) {
		for i, d := range dirs {
			if d.verb != "allow" || used[i] {
				continue
			}
			if !knownCheck(d.check) || d.reason == "" {
				continue // malformed: already a directive finding
			}
			if d.check == UnusedAllow.Name || !on(d.check) {
				continue // self-referential or unjudged under -checks
			}
			f := Finding{Pos: d.pos, Check: UnusedAllow.Name,
				Msg: fmt.Sprintf("//greenlint:allow %s suppresses nothing here; delete the stale directive (or fix the drift that orphaned it)", d.check)}
			if suppressorOf(f, dirs) < 0 {
				out = append(out, f)
			}
		}
	}
	_, danglingDirs := funcDirectives(pass)
	dangling := make(map[token.Position]bool, len(danglingDirs))
	for _, d := range danglingDirs {
		dangling[d.pos] = true
	}
	out = append(out, validateDirectives(dirs, dangling)...)
	return out
}

// Run loads every package matched by patterns (./...-style wildcards or
// plain directories) and lints them all. Findings come back sorted by
// position; loadWarnings carries non-fatal type-check notes.
func Run(patterns []string) (findings []Finding, loadWarnings []string, err error) {
	return RunChecks(patterns, nil)
}

// RunChecks is Run restricted to the named checks (nil or empty =
// everything). Unknown names error out loudly — a typoed -checks filter
// must not silently lint nothing.
func RunChecks(patterns []string, checks []string) (findings []Finding, loadWarnings []string, err error) {
	var enabled map[string]bool
	if len(checks) > 0 {
		enabled = make(map[string]bool, len(checks))
		for _, c := range checks {
			if !knownCheck(c) {
				return nil, nil, fmt.Errorf("unknown check %q (known checks: %s)", c, strings.Join(checkNames(), ", "))
			}
			enabled[c] = true
		}
	}
	fset := token.NewFileSet()
	pkgs, err := Load(fset, patterns)
	if err != nil {
		return nil, nil, err
	}
	for _, pkg := range pkgs {
		findings = append(findings, lintPackage(fset, pkg, enabled)...)
		for _, terr := range pkg.TypeErrors {
			loadWarnings = append(loadWarnings, fmt.Sprintf("%s: type-check: %v", pkg.Path, terr))
		}
	}
	SortFindings(findings)
	return findings, loadWarnings, nil
}

// SortFindings orders findings by file, line, column, then check, so
// output is stable — the linter holds itself to the invariant it
// enforces.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
}
