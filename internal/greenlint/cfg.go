package greenlint

// Intraprocedural control-flow graphs over go/ast.
//
// The syntactic analyzers (wallclock, rowmajor, ...) ask "does this
// expression appear anywhere?". The ownership and accounting analyzers
// (framerelease, meteredcost) ask a strictly harder question: "does
// this obligation get discharged on EVERY path?" — including the early
// error return, the loop that breaks out, and the defer that only runs
// if its statement executed. That needs basic blocks and edges, not an
// ast.Inspect.
//
// The builder decomposes one function body into blocks of atomic nodes
// (simple statements and the condition/tag expressions of the control
// statements they came from) in evaluation order. Control structure
// becomes edges:
//
//   - if/else: condition block branches to then/else, re-joining at a
//     done block;
//   - for/range: a head block with a back edge from the body (via the
//     post statement), an exit edge to done, and break/continue edges —
//     labeled or not — resolved through a scope stack;
//   - switch/type switch/select: the head branches to every case;
//     fallthrough edges chain cases; a missing default adds a direct
//     head→done edge;
//   - return: edge to the shared Exit block;
//   - panic(...): edge to the shared PanicExit block, kept separate so
//     ownership checks can demand release on ordinary returns without
//     claiming anything about a dying process (defers still run there —
//     analyzers that model defer see the DeferStmt node on the path);
//   - goto: edge to the labeled statement's block.
//
// defer and go statements stay in the node stream as whole DeferStmt /
// GoStmt nodes; what deferred execution *means* is analyzer policy (the
// framerelease lattice has a distinct owned-with-deferred-release
// state), not graph structure.
//
// Function literals are opaque at this level: their bodies are NOT
// inlined into the enclosing graph (they execute at some other time, or
// never). Analyzers build a separate CFG per literal and treat captures
// conservatively. Range statements contribute their operand expression
// to the head block; the per-iteration key/value rebinding is invisible,
// which is sound for the obligation analyses because an obligation is
// never introduced by a range binding.

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Block is one basic block: a maximal straight-line run of atomic nodes
// with edges only at the end.
type Block struct {
	// Index is the creation order, stable for tests and debug output.
	Index int
	// Kind names why the block exists ("entry", "for.head", "if.then",
	// "exit", "panic", ...) — documentation and test hooks, never
	// semantics.
	Kind string
	// Nodes holds the block's atomic statements and expressions in
	// evaluation order.
	Nodes []ast.Node
	// Succs are the control-flow successors.
	Succs []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block in creation order. Blocks[0] is Entry.
	Blocks []*Block
	// Entry is where execution starts.
	Entry *Block
	// Exit is the single ordinary exit: every return statement and the
	// fall-off-the-end path lead here.
	Exit *Block
	// PanicExit collects panic(...) paths, kept apart from Exit so
	// analyzers can apply different exit obligations.
	PanicExit *Block
}

// loopScope resolves break/continue targets, including labeled ones.
type loopScope struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select scopes (break-only)
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator
	// (return/branch/panic) until the next statement starts a fresh,
	// unreachable block.
	cur *Block
	// scopes is the break/continue resolution stack, innermost last.
	scopes []loopScope
	// pendingLabel names the label of the labeled statement being
	// built, so `outer: for ...` registers its scopes under "outer".
	pendingLabel string
	// labelBlocks maps goto/label names to their blocks, created on
	// first reference so forward gotos resolve.
	labelBlocks map[string]*Block
	// fallthroughTo is the next case block while building switch cases.
	fallthroughTo *Block
	// isPanic classifies calls that never return normally.
	isPanic func(*ast.CallExpr) bool
}

// BuildCFG constructs the control-flow graph of one function body.
// isPanic, when non-nil, classifies calls that never return normally
// (panic and friends); nil uses the default, which recognizes the
// builtin panic by name.
func BuildCFG(body *ast.BlockStmt, isPanic func(*ast.CallExpr) bool) *CFG {
	if isPanic == nil {
		isPanic = defaultIsPanic
	}
	b := &cfgBuilder{
		cfg:         &CFG{},
		labelBlocks: map[string]*Block{},
		isPanic:     isPanic,
	}
	entry := b.newBlock("entry")
	b.cfg.Entry = entry
	b.cfg.Exit = b.newBlock("exit")
	b.cfg.PanicExit = b.newBlock("panic")
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.cfg.Exit) // fall off the end
	return b.cfg
}

// defaultIsPanic recognizes the builtin panic by bare name — precise
// enough unless someone shadows `panic`, which go vet already dislikes.
func defaultIsPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// add appends an atomic node to the current block, opening a fresh
// unreachable block when the previous statement terminated control.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// edge adds cur→to without ending the block.
func (b *cfgBuilder) edge(to *Block) {
	if b.cur != nil {
		b.cur.Succs = append(b.cur.Succs, to)
	}
}

// jump ends the current block with a single edge to `to`.
func (b *cfgBuilder) jump(to *Block) {
	b.edge(to)
	b.cur = nil
}

// start switches construction to `to`.
func (b *cfgBuilder) start(to *Block) { b.cur = to }

// takeLabel consumes the pending label for the scope being opened.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findScope resolves a break/continue target. wantContinue restricts to
// loop scopes (switch/select scopes cannot be continued).
func (b *cfgBuilder) findScope(label string, wantContinue bool) *loopScope {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		s := &b.scopes[i]
		if wantContinue && s.continueTo == nil {
			continue
		}
		if label == "" || s.label == label {
			return s
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		b.edge(then)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(els)
			b.start(then)
			b.stmt(s.Body)
			b.jump(done)
			b.start(els)
			b.stmt(s.Else)
			b.jump(done)
		} else {
			b.jump(done)
			b.start(then)
			b.stmt(s.Body)
			b.jump(done)
		}
		b.start(done)

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		continueTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			continueTo = post
		}
		b.jump(head)
		b.start(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(done)
		}
		b.jump(body)
		b.scopes = append(b.scopes, loopScope{label: label, breakTo: done, continueTo: continueTo})
		b.start(body)
		b.stmt(s.Body)
		b.scopes = b.scopes[:len(b.scopes)-1]
		if post != nil {
			b.jump(post)
			b.start(post)
			b.stmt(s.Post)
			b.jump(head)
		} else {
			b.jump(head)
		}
		b.start(done)

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.jump(head)
		b.start(head)
		b.add(s.X) // the ranged operand is evaluated; key/value rebinding is per-iteration detail
		b.edge(done)
		b.jump(body)
		b.scopes = append(b.scopes, loopScope{label: label, breakTo: done, continueTo: head})
		b.start(body)
		b.stmt(s.Body)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.jump(head)
		b.start(done)

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchCases(label, s.Body, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign) // carries the x.(type) operand
		b.switchCases(label, s.Body, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		done := b.newBlock("select.done")
		head := b.cur
		b.scopes = append(b.scopes, loopScope{label: label, breakTo: done})
		for _, cc := range s.Body.List {
			comm, ok := cc.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock("select.case")
			if head != nil {
				head.Succs = append(head.Succs, blk)
			}
			b.start(blk)
			if comm.Comm != nil {
				b.stmt(comm.Comm)
			}
			b.stmtList(comm.Body)
			b.jump(done)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		// Every path runs through some case (select {} blocks forever,
		// leaving done unreachable — correctly dead).
		b.cur = nil
		b.start(done)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if sc := b.findScope(label, false); sc != nil {
				b.jump(sc.breakTo)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if sc := b.findScope(label, true); sc != nil {
				b.jump(sc.continueTo)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			b.jump(b.labelBlock(label))
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.jump(b.fallthroughTo)
			} else {
				b.cur = nil
			}
		}

	case *ast.LabeledStmt:
		name := s.Label.Name
		blk := b.labelBlock(name)
		b.jump(blk)
		b.start(blk)
		b.pendingLabel = name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.DeferStmt, *ast.GoStmt, *ast.AssignStmt, *ast.IncDecStmt,
		*ast.SendStmt, *ast.DeclStmt:
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.isPanic(call) {
			b.jump(b.cfg.PanicExit)
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Unknown statement kinds flow through as opaque nodes.
		b.add(s)
	}
}

// switchCases builds the case blocks of a (type) switch. allowFall
// enables fallthrough chaining (expression switches only).
func (b *cfgBuilder) switchCases(label string, body *ast.BlockStmt, allowFall bool) {
	done := b.newBlock("switch.done")
	head := b.cur
	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cc := range body.List {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		clauses = append(clauses, clause)
		caseBlocks = append(caseBlocks, b.newBlock("switch.case"))
		if clause.List == nil {
			hasDefault = true
		}
	}
	if head != nil {
		for _, blk := range caseBlocks {
			head.Succs = append(head.Succs, blk)
		}
		if !hasDefault {
			head.Succs = append(head.Succs, done)
		}
	}
	b.scopes = append(b.scopes, loopScope{label: label, breakTo: done})
	for i, clause := range clauses {
		b.start(caseBlocks[i])
		for _, e := range clause.List {
			b.add(e)
		}
		if allowFall && i+1 < len(caseBlocks) {
			b.fallthroughTo = caseBlocks[i+1]
		} else {
			b.fallthroughTo = nil
		}
		b.stmtList(clause.Body)
		b.fallthroughTo = nil
		b.jump(done)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.start(done)
}

// labelBlock returns (creating on demand) the block a label names, so
// forward gotos resolve before the labeled statement is reached.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labelBlocks[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labelBlocks[name] = blk
	return blk
}

// Preds computes the predecessor lists of every block.
func (c *CFG) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(c.Blocks))
	for _, blk := range c.Blocks {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], blk)
		}
	}
	return preds
}

// ReversePostorder returns the blocks in reverse postorder from Entry;
// blocks unreachable from Entry (dead code) follow in creation order.
// This is the canonical iteration order for the forward solver.
func (c *CFG) ReversePostorder() []*Block {
	seen := make(map[*Block]bool, len(c.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	if c.Entry != nil {
		dfs(c.Entry)
	}
	out := make([]*Block, 0, len(c.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, b := range c.Blocks {
		if !seen[b] {
			out = append(out, b)
		}
	}
	return out
}

// String renders the graph for tests and debugging: one line per block,
// in index order, with node source text and successor indices.
func (c *CFG) String() string {
	var sb strings.Builder
	fset := token.NewFileSet()
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", blk.Index, blk.Kind)
		for _, n := range blk.Nodes {
			var nb strings.Builder
			printer.Fprint(&nb, fset, n)
			text := strings.Join(strings.Fields(nb.String()), " ")
			fmt.Fprintf(&sb, " {%s}", text)
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
