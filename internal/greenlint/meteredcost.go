package greenlint

// meteredcost enforces energy-accounting completeness: the paper's
// green-AutoML comparisons are only as trustworthy as the cost ledger,
// and the ledger's currency is ml.Cost. Every fit/predict entry point
// in internal/ml returns a Cost describing the compute it just spent;
// the caller's side of the contract is to CHARGE that cost — feed it to
// an energy.Meter, fold it into an accumulator, or return it so a
// caller higher up does. A Cost that is produced and never read is
// compute the tracker never hears about: the search looks cheaper than
// it was, which is precisely the measurement gap the source paper
// warns about.
//
// The analysis mirrors framerelease's machinery on a smaller lattice.
// Any call (from non-test code) whose results include an ml.Cost mints
// an obligation; the variable holding it carries path-states
//
//	Uncharged — produced, not yet read on this path
//	Charged   — read (charged, accumulated, returned, or stored)
//
// joined by union. Findings:
//
//   - discarded: the Cost result is dropped outright — a bare call
//     statement, or bound to _, or explicitly laundered via `_ = c`;
//   - unmetered path: a normal exit reachable with Uncharged set — the
//     classic shape is the early error return between Fit and the
//     meter.Run call.
//
// "Read" is deliberately generous (any non-write mention of the
// variable counts): the analyzer's job is to catch compute that falls
// on the floor, not to audit what the charging code does with it.
// Methods on Cost itself (Works, Add) and composite literals are not
// sources — obligations begin where compute happens, at the call that
// returned the Cost.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

const (
	mcUncharged uint8 = 1 << iota
	mcCharged
)

// MeteredCost is the energy-accounting completeness analyzer.
var MeteredCost = &Analyzer{
	Name: "meteredcost",
	Doc:  "an ml.Cost returned by fit/predict compute must be charged (metered, accumulated, or returned) on every path — no free compute",
	Run:  runMeteredCost,
}

// mlPkg reports whether pkg is the ml package.
func mlPkg(pkg *types.Package) bool {
	return pkg != nil && strings.HasSuffix(pkg.Path(), "internal/ml")
}

// isCostType reports whether t is ml.Cost.
func isCostType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "Cost" && mlPkg(n.Obj().Pkg())
}

type costAnalysis struct {
	p        *Pass
	reported map[string]bool
}

func runMeteredCost(p *Pass) {
	a := &costAnalysis{p: p, reported: map[string]bool{}}
	for _, f := range p.Pkg.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					a.checkBody(fn.Body)
				}
			case *ast.FuncLit:
				a.checkBody(fn.Body)
			}
			return true
		})
	}
}

// isCostSource reports whether call mints a charge obligation: a real
// call (not a conversion, not a builtin) with an ml.Cost among its
// results, excluding methods on Cost itself — Cost.Works and friends
// transform an obligation already minted, they do not create one.
func (a *costAnalysis) isCostSource(call *ast.CallExpr) bool {
	if fn := a.p.calleeFunc(call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if isCostType(sig.Recv().Type()) {
				return false
			}
			if pt, ok := sig.Recv().Type().(*types.Pointer); ok && isCostType(pt.Elem()) {
				return false
			}
		}
	}
	tv, ok := a.p.Pkg.Info.Types[call.Fun]
	if ok && tv.IsType() {
		return false // conversion
	}
	t := a.p.typeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isCostType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isCostType(t)
	}
}

// costResultIndexes returns the positions of ml.Cost values in call's
// result tuple.
func (a *costAnalysis) costResultIndexes(call *ast.CallExpr) []int {
	t := a.p.typeOf(call)
	if tup, ok := t.(*types.Tuple); ok {
		var out []int
		for i := 0; i < tup.Len(); i++ {
			if isCostType(tup.At(i).Type()) {
				out = append(out, i)
			}
		}
		return out
	}
	if isCostType(t) {
		return []int{0}
	}
	return nil
}

func (a *costAnalysis) checkBody(body *ast.BlockStmt) {
	cfg := BuildCFG(body, nil)

	srcPos := map[any]token.Pos{}
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !a.isCostSource(call) {
					continue
				}
				for _, obj := range a.boundCostVars(as, i, call) {
					srcPos[obj] = call.Pos()
				}
			}
		}
	}

	transfer := func(blk *Block, in Fact) Fact {
		st := in.(varState).clone()
		for _, n := range blk.Nodes {
			st = a.step(n, st, nil)
		}
		return st
	}
	sol, err := SolveForward(cfg, varLattice{}, varState{}, transfer)
	if err != nil {
		a.p.Reportf(body.Pos(), "internal error: %v", err)
		return
	}

	for _, blk := range cfg.Blocks {
		st := sol.In[blk].(varState).clone()
		for _, n := range blk.Nodes {
			st = a.step(n, st, func(pos token.Pos, format string, args ...any) {
				a.reportOnce(pos, format, args...)
			})
		}
	}

	// PanicExit is exempt like framerelease's: a panicking path is not
	// an accounting strategy anyone chose.
	exitState := sol.In[cfg.Exit].(varState)
	for obj, mask := range exitState {
		if mask&mcUncharged != 0 {
			pos, ok := srcPos[obj]
			if !ok {
				continue
			}
			name := "cost"
			if o, ok := obj.(types.Object); ok {
				name = o.Name()
			}
			a.reportOnce(pos,
				"ml.Cost %q may go unmetered: not charged, accumulated, or returned on every path to return — no compute path is free", name)
		}
	}
}

func (a *costAnalysis) reportOnce(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if a.reported[key] {
		return
	}
	a.reported[key] = true
	a.p.Reportf(pos, "%s", msg)
}

// boundCostVars resolves which variables an assignment binds to the
// Cost results of the source call at Rhs[i].
func (a *costAnalysis) boundCostVars(as *ast.AssignStmt, i int, call *ast.CallExpr) []types.Object {
	var out []types.Object
	if len(as.Lhs) == len(as.Rhs) {
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
			if obj := a.objOf(id); obj != nil {
				out = append(out, obj)
			}
		}
		return out
	}
	if len(as.Rhs) == 1 {
		for _, k := range a.costResultIndexes(call) {
			if k >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[k].(*ast.Ident); ok && id.Name != "_" {
				if obj := a.objOf(id); obj != nil {
					out = append(out, obj)
				}
			}
		}
	}
	return out
}

func (a *costAnalysis) objOf(id *ast.Ident) types.Object {
	if obj := a.p.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return a.p.Pkg.Info.Uses[id]
}

// step applies one atomic node to the charge state.
func (a *costAnalysis) step(n ast.Node, st varState, rep frameReporter) varState {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return a.stepAssign(n, st, rep)

	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok && a.isCostSource(call) {
			if rep != nil {
				rep(call.Pos(), "ml.Cost result of %s is discarded; charge it to the energy meter, accumulate it, or return it", callName(call))
			}
		}
		return a.markReads(n.X, st)

	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = a.markReads(v, st)
						if call, ok := ast.Unparen(v).(*ast.CallExpr); ok && a.isCostSource(call) && len(vs.Names) == 1 && vs.Names[0].Name != "_" {
							if obj := a.objOf(vs.Names[0]); obj != nil {
								st[obj] = mcUncharged
							}
						}
					}
				}
			}
		}
		return st

	case *ast.DeferStmt:
		return a.markReads(n.Call, st)

	case *ast.GoStmt:
		return a.markReads(n.Call, st)

	case *ast.ReturnStmt:
		for _, res := range n.Results {
			st = a.markReads(res, st)
		}
		return st

	case *ast.SendStmt:
		st = a.markReads(n.Chan, st)
		return a.markReads(n.Value, st)

	case *ast.IncDecStmt:
		return a.markReads(n.X, st)

	case ast.Expr:
		return a.markReads(n, st)
	}
	return st
}

func (a *costAnalysis) stepAssign(as *ast.AssignStmt, st varState, rep frameReporter) varState {
	// `_ = c` on a tracked, still-uncharged cost is an explicit
	// discard, not a charge.
	if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
			if rid, ok := ast.Unparen(as.Rhs[0]).(*ast.Ident); ok {
				if obj := a.p.Pkg.Info.Uses[rid]; obj != nil {
					if mask, tracked := st[obj]; tracked && mask&mcUncharged != 0 {
						if rep != nil {
							rep(rid.Pos(), "ml.Cost %q is explicitly discarded (_ = %s); charge it instead", rid.Name, rid.Name)
						}
						st[obj] = mcCharged // reported once; don't re-report at exit
						return st
					}
				}
			}
		}
	}
	// RHS reads discharge obligations.
	for _, rhs := range as.Rhs {
		st = a.markReads(rhs, st)
	}
	// Non-ident LHS components (index/selector bases) are reads.
	for _, lhs := range as.Lhs {
		if _, ok := lhs.(*ast.Ident); !ok {
			st = a.markReads(lhs, st)
		}
	}
	// Writes: _ bindings of cost results are discards; ident writes
	// drop tracking (overwrite of an uncharged cost is itself a leak —
	// report at the overwrite).
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		isSrc := ok && a.isCostSource(call)
		if !isSrc {
			continue
		}
		if len(as.Lhs) == len(as.Rhs) {
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				if rep != nil {
					rep(call.Pos(), "ml.Cost result of %s is discarded (bound to _); charge it to the energy meter, accumulate it, or return it", callName(call))
				}
			}
		} else if len(as.Rhs) == 1 {
			for _, k := range a.costResultIndexes(call) {
				if k < len(as.Lhs) {
					if id, ok := as.Lhs[k].(*ast.Ident); ok && id.Name == "_" {
						if rep != nil {
							rep(call.Pos(), "ml.Cost result of %s is discarded (bound to _); charge it to the energy meter, accumulate it, or return it", callName(call))
						}
					}
				}
			}
		}
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := a.objOf(id)
		if obj == nil {
			continue
		}
		if mask, tracked := st[obj]; tracked && mask&mcUncharged != 0 && as.Tok != token.DEFINE {
			if rep != nil {
				rep(id.Pos(), "ml.Cost %q overwritten while still uncharged; charge it first", id.Name)
			}
		}
		delete(st, obj)
	}
	// New obligations.
	for i, rhs := range as.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !a.isCostSource(call) {
			continue
		}
		for _, obj := range a.boundCostVars(as, i, call) {
			st[obj] = mcUncharged
		}
	}
	return st
}

// markReads marks every tracked variable mentioned in e as charged.
// Function literals count: capturing the cost hands the obligation to
// code we treat as charging it.
func (a *costAnalysis) markReads(e ast.Expr, st varState) varState {
	if e == nil {
		return st
	}
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := a.p.Pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		if mask, tracked := st[obj]; tracked {
			st[obj] = (mask &^ mcUncharged) | mcCharged
		}
		return true
	})
	return st
}
